// Package core implements LiFTinG itself (§5 of the paper): the
// verification procedures that coerce nodes into contributing their fair
// share to the gossip dissemination protocol.
//
//   - Direct verification: requested chunks must be served (blame
//     f·(|R|−|S|)/|R| from the receiver, Table 1).
//   - Direct cross-checking: served chunks must be acknowledged and further
//     proposed to f nodes within a gossip period; the verifier polls the
//     claimed partners with probability pdcc (blames per Table 1).
//   - Local history auditing: the entropy of a node's fanout and fanin
//     histories must exceed γ, and history entries must be confirmed by
//     their alleged receivers (a-posteriori cross-checking).
//
// The Verifier type attaches to a gossip.Node via its Monitor and AuxHandler
// hooks; the Auditor runs sporadically from any node. Blames flow into a
// BlameSink — either the message-driven reputation client or a local board.
package core

import (
	"fmt"
	"time"

	"lifting/internal/msg"
)

// Config holds LiFTinG's parameters.
type Config struct {
	// F is the protocol fanout (the verifier checks against it).
	F int
	// Period is the gossip period Tg.
	Period time.Duration
	// Pdcc is the probability of triggering direct cross-checking after a
	// serve (§5: 1 purges, 0 disables, anything in between trades overhead
	// for detection speed).
	Pdcc float64
	// AckTimeout is how long a server waits for the receiver's ack before
	// blaming f. Defaults to 2·Period.
	AckTimeout time.Duration
	// ConfirmTimeout is how long the verifier collects confirm responses.
	// Defaults to Period.
	ConfirmTimeout time.Duration
	// ServeTimeout is how long a requester waits for requested chunks
	// before emitting partial-serve blames. Defaults to Period.
	ServeTimeout time.Duration
	// HistoryPeriods is nh, the audit horizon in gossip periods.
	HistoryPeriods int
	// Gamma is the entropy threshold γ for fanout/fanin audits (8.95 in
	// the paper for nh·f = 600).
	Gamma float64
	// GammaFanin optionally overrides Gamma for the fanin check. The paper
	// uses one threshold for both at n = 10,000; in small systems the fanin
	// multiset is naturally more skewed (fast nodes win the first-proposal
	// race) and may warrant a lower bar. 0 means use Gamma.
	GammaFanin float64
	// Eta is the expulsion threshold η on normalized scores (−9.75).
	Eta float64
	// AuditPollTimeout bounds the a-posteriori cross-check collection.
	// Defaults to 4·Period (polls use the reliable transport).
	AuditPollTimeout time.Duration
	// MaxAuditPolls caps how many history entries an audit polls
	// (0 = poll all; §5.3 allows "all or a subset").
	MaxAuditPolls int
	// PeriodCheckSlack is the fraction of the expected propose phases below
	// which the gossip-period check emits period-stretch blame. Defaults to
	// 0.8 (tolerates jitter and empty periods).
	PeriodCheckSlack float64
	// MinEntropySamples is the smallest multiset size on which an entropy
	// check is meaningful; smaller evidence sets are skipped. Defaults
	// to 32.
	MinEntropySamples int
	// Population is the system size n, used to cap the nominal entropy of
	// audits in small systems (a history over n−1 possible partners cannot
	// exceed log2(n−1) bits). 0 means unbounded (large-system regime).
	Population int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.F <= 0 {
		return fmt.Errorf("core: fanout must be positive, got %d", c.F)
	}
	if c.Period <= 0 {
		return fmt.Errorf("core: period must be positive, got %v", c.Period)
	}
	if c.Pdcc < 0 || c.Pdcc > 1 {
		return fmt.Errorf("core: pdcc must be in [0,1], got %v", c.Pdcc)
	}
	if c.HistoryPeriods <= 0 {
		return fmt.Errorf("core: history periods must be positive, got %d", c.HistoryPeriods)
	}
	return nil
}

// withDefaults fills zero timeouts with their Period-derived defaults.
func (c Config) withDefaults() Config {
	if c.AckTimeout == 0 {
		c.AckTimeout = 2 * c.Period
	}
	if c.ConfirmTimeout == 0 {
		c.ConfirmTimeout = c.Period
	}
	if c.ServeTimeout == 0 {
		c.ServeTimeout = c.Period
	}
	if c.AuditPollTimeout == 0 {
		c.AuditPollTimeout = 4 * c.Period
	}
	if c.PeriodCheckSlack == 0 {
		c.PeriodCheckSlack = 0.8
	}
	if c.MinEntropySamples == 0 {
		c.MinEntropySamples = 32
	}
	return c
}

// nominalEntropySize returns the evidence size γ is calibrated for: nh·f
// entries, capped by the population when the system is small (at most n−1
// distinct partners exist).
func (c Config) nominalEntropySize() int {
	nominal := c.HistoryPeriods * c.F
	if c.Population > 1 && c.Population-1 < nominal {
		nominal = c.Population - 1
	}
	return nominal
}

// BlameSink receives blame emissions from verification procedures.
// reputation.Client (message-driven) and reputation-board adapters both
// satisfy it.
type BlameSink interface {
	Blame(target msg.NodeID, value float64, reason msg.BlameReason)
}

// BlameFunc adapts a function to the BlameSink interface.
type BlameFunc func(target msg.NodeID, value float64, reason msg.BlameReason)

// Blame implements BlameSink.
func (f BlameFunc) Blame(target msg.NodeID, value float64, reason msg.BlameReason) {
	f(target, value, reason)
}
