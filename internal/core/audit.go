package core

import (
	"math"
	"time"

	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/sim"
	"lifting/internal/stats"
)

// AuditOutcome is the result of one local history audit (§5.3).
type AuditOutcome struct {
	Target msg.NodeID
	// Responded reports whether the target returned its history at all.
	Responded bool
	// FanoutEntropy is H(Fh), the entropy of the claimed propose partners.
	FanoutEntropy float64
	// FanoutSize is |Fh|.
	FanoutSize int
	// FanoutOK reports whether the fanout entropy check passed.
	FanoutOK bool
	// FaninEntropy is H(F'h), reconstructed from the confirm-askers
	// reported by the polled partners.
	FaninEntropy float64
	// FaninSize is |F'h|.
	FaninSize int
	// FaninOK reports whether the fanin entropy check passed.
	FaninOK bool
	// ProposalPeriods is the number of distinct periods with proposals in
	// the history (the gossip-period check).
	ProposalPeriods int
	// PeriodBlame is the blame emitted for gossip-period stretching.
	PeriodBlame float64
	// Polled is the number of history entries polled a posteriori.
	Polled int
	// Unconfirmed is the number of polled entries the alleged receivers did
	// not confirm; each costs a blame of 1.
	Unconfirmed int
	// Expel reports the audit verdict: failing either entropy check (or
	// refusing the audit) expels the node (§5.3).
	Expel bool
}

// EntropyThreshold returns the effective entropy threshold for an evidence
// multiset of the given size. γ is calibrated for histories of nh·f entries
// (log2(600) ≈ 9.23 max for the paper's parameters); smaller evidence sets
// scale the threshold proportionally in log-space so short histories are not
// wrongfully condemned. This scaling is an implementation choice the paper
// leaves open.
func EntropyThreshold(gamma float64, size, nominal int) float64 {
	if size >= nominal || size <= 1 || nominal <= 1 {
		return gamma
	}
	return gamma * math.Log2(float64(size)) / math.Log2(float64(nominal))
}

// EvaluateFanout runs the fanout entropy check of §5.3 on a history
// snapshot: the multiset Fh of claimed partners must have entropy above the
// (scaled) threshold.
func EvaluateFanout(proposals []msg.ProposalRecord, cfg Config) (entropy float64, size int, ok bool) {
	cfg = cfg.withDefaults()
	ms := stats.NewMultiset[msg.NodeID]()
	for i := range proposals {
		ms.Add(proposals[i].Partner)
	}
	entropy = ms.Entropy()
	size = ms.Len()
	if size < cfg.MinEntropySamples {
		return entropy, size, true
	}
	return entropy, size, entropy >= EntropyThreshold(cfg.Gamma, size, cfg.nominalEntropySize())
}

// EvaluateFanin runs the fanin entropy check of §5.3 on the confirm-asker
// multiset F'h gathered from the polled partners.
func EvaluateFanin(askers *stats.Multiset[msg.NodeID], cfg Config) (entropy float64, size int, ok bool) {
	cfg = cfg.withDefaults()
	entropy = askers.Entropy()
	size = askers.Len()
	if size < cfg.MinEntropySamples {
		return entropy, size, true
	}
	gamma := cfg.Gamma
	if cfg.GammaFanin != 0 {
		gamma = cfg.GammaFanin
	}
	return entropy, size, entropy >= EntropyThreshold(gamma, size, cfg.nominalEntropySize())
}

// PeriodStretchBlame implements the gossip-period check of §5.3: assuming a
// correct fanout, too few propose phases in the history reveal a stretched
// period. It returns the blame value (0 when within slack).
func PeriodStretchBlame(proposalPeriods, expectedPeriods int, slack float64) float64 {
	if expectedPeriods <= 0 {
		return 0
	}
	floor := slack * float64(expectedPeriods)
	if float64(proposalPeriods) >= floor {
		return 0
	}
	return float64(expectedPeriods - proposalPeriods)
}

// Auditor runs local history audits from one node (§5.3: audits are
// sporadic, run over the reliable transport, and may lead to expulsion).
type Auditor struct {
	self msg.NodeID
	cfg  Config
	ctx  sim.Context
	netw net.Network
	rand *rng.Stream
	sink BlameSink
	// onOutcome receives every finished audit.
	onOutcome func(AuditOutcome)

	pending map[msg.NodeID]*auditState
}

type auditState struct {
	outcome   AuditOutcome
	polls     map[pollKey]bool // outstanding polls
	confirmed map[pollKey]bool
	askers    *stats.Multiset[msg.NodeID]
	expected  int
	gotResp   bool
	closed    bool
}

type pollKey struct {
	partner msg.NodeID
	period  msg.Period
}

// NewAuditor creates an auditor hosted at node self. Outcomes are delivered
// to onOutcome; blames flow into sink.
func NewAuditor(self msg.NodeID, cfg Config, ctx sim.Context, netw net.Network, rand *rng.Stream, sink BlameSink, onOutcome func(AuditOutcome)) *Auditor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Auditor{
		self:      self,
		cfg:       cfg.withDefaults(),
		ctx:       ctx,
		netw:      netw,
		rand:      rand,
		sink:      sink,
		onOutcome: onOutcome,
		pending:   make(map[msg.NodeID]*auditState),
	}
}

// Audit requests target's history and launches the checks. Concurrent
// audits of the same target are coalesced.
func (a *Auditor) Audit(target msg.NodeID) {
	if _, dup := a.pending[target]; dup {
		return
	}
	st := &auditState{
		outcome:   AuditOutcome{Target: target},
		polls:     make(map[pollKey]bool),
		confirmed: make(map[pollKey]bool),
		askers:    stats.NewMultiset[msg.NodeID](),
	}
	a.pending[target] = st
	a.netw.Send(a.self, target, &msg.AuditReq{
		Sender:  a.self,
		Horizon: time.Duration(a.cfg.HistoryPeriods) * a.cfg.Period,
	}, net.Reliable)
	a.ctx.After(a.cfg.AuditPollTimeout, func() {
		if !st.gotResp && !st.closed {
			// Refusing an audit is treated as failing it: otherwise
			// freeriders would simply stay silent.
			st.outcome.Expel = true
			a.finish(target, st)
		}
	})
}

// HandleAux processes audit responses addressed to this auditor.
func (a *Auditor) HandleAux(from msg.NodeID, m msg.Message) bool {
	switch mm := m.(type) {
	case *msg.AuditResp:
		a.onAuditResp(from, mm)
	case *msg.AuditPollResp:
		a.onAuditPollResp(from, mm)
	default:
		return false
	}
	return true
}

func (a *Auditor) onAuditResp(from msg.NodeID, resp *msg.AuditResp) {
	st, ok := a.pending[from]
	if !ok || st.gotResp || st.closed {
		return
	}
	st.gotResp = true
	st.outcome.Responded = true

	// Fanout entropy check on the claimed proposals.
	st.outcome.FanoutEntropy, st.outcome.FanoutSize, st.outcome.FanoutOK = EvaluateFanout(resp.Proposals, a.cfg)

	// Gossip-period check: the history horizon is h *seconds* (§5), so an
	// honest node's snapshot contains one propose phase per Tg of wall
	// time, up to nh. A stretcher's own period numbering stretches with it,
	// which is why the expectation must come from the auditor's clock, not
	// from the snapshot's period span. Nodes younger than the horizon are
	// covered by capping at the elapsed system time (this reproduction does
	// not model churn; a deployment would add a join-time grace).
	periods := make(map[msg.Period]bool)
	for i := range resp.Proposals {
		periods[resp.Proposals[i].Period] = true
	}
	st.outcome.ProposalPeriods = len(periods)
	expected := int(a.ctx.Now() / a.cfg.Period)
	if expected > a.cfg.HistoryPeriods {
		expected = a.cfg.HistoryPeriods
	}
	st.outcome.PeriodBlame = PeriodStretchBlame(len(periods), expected, a.cfg.PeriodCheckSlack)
	// Complementary clock check: the density check alone misses a stretcher
	// once the run outlives its nh own-period retention (its last nh sparse
	// periods then span the whole horizon and look dense). But a node that
	// numbers its phases honestly reports a newest period far behind the
	// auditor's clock — and one that inflates its numbering to keep up
	// leaves gaps the density check catches. Either way the stretch shows.
	if len(resp.Proposals) > 0 {
		var newest msg.Period
		for i := range resp.Proposals {
			if p := resp.Proposals[i].Period; p > newest {
				newest = p
			}
		}
		elapsed := int(a.ctx.Now() / a.cfg.Period)
		st.outcome.PeriodBlame += PeriodStretchBlame(int(newest), elapsed, a.cfg.PeriodCheckSlack)
	}
	if a.sink != nil && st.outcome.PeriodBlame > 0 {
		a.sink.Blame(from, st.outcome.PeriodBlame, msg.ReasonPeriodStretch)
	}

	// A-posteriori cross-checking: poll the alleged receivers, coalescing
	// one poll per (partner, period).
	type pollBody struct {
		partner msg.NodeID
		period  msg.Period
		chunks  []msg.ChunkID
	}
	merged := make(map[pollKey]*pollBody)
	var order []pollKey
	for i := range resp.Proposals {
		rec := &resp.Proposals[i]
		key := pollKey{partner: rec.Partner, period: rec.Period}
		if b, ok := merged[key]; ok {
			b.chunks = append(b.chunks, rec.Chunks...)
			continue
		}
		merged[key] = &pollBody{partner: rec.Partner, period: rec.Period, chunks: append([]msg.ChunkID(nil), rec.Chunks...)}
		order = append(order, key)
	}
	if max := a.cfg.MaxAuditPolls; max > 0 && len(order) > max {
		idx := a.rand.SampleK(len(order), max)
		sampled := make([]pollKey, 0, max)
		for _, i := range idx {
			sampled = append(sampled, order[i])
		}
		order = sampled
	}
	for _, key := range order {
		b := merged[key]
		st.polls[key] = true
		a.netw.Send(a.self, b.partner, &msg.AuditPoll{
			Sender:  a.self,
			Suspect: from,
			Period:  b.period,
			Chunks:  b.chunks,
		}, net.Reliable)
	}
	st.outcome.Polled = len(order)

	a.ctx.After(a.cfg.AuditPollTimeout, func() {
		if !st.closed {
			a.conclude(from, st)
		}
	})
	if len(order) == 0 {
		a.conclude(from, st)
	}
}

func (a *Auditor) onAuditPollResp(from msg.NodeID, resp *msg.AuditPollResp) {
	st, ok := a.pending[resp.Suspect]
	if !ok || st.closed {
		return
	}
	key := pollKey{partner: from, period: resp.Period}
	if !st.polls[key] || st.confirmed[key] {
		return
	}
	if resp.Confirmed {
		st.confirmed[key] = true
	}
	for _, asker := range resp.Askers {
		st.askers.Add(asker)
	}
}

func (a *Auditor) conclude(target msg.NodeID, st *auditState) {
	unconfirmed := 0
	//lint:allow ordered-map-range commutative count; order cannot affect the total
	for key := range st.polls {
		if !st.confirmed[key] {
			unconfirmed++
		}
	}
	st.outcome.Unconfirmed = unconfirmed
	if a.sink != nil && unconfirmed > 0 {
		a.sink.Blame(target, UnconfirmedHistoryBlame(unconfirmed), msg.ReasonAuditUnconfirmed)
	}

	st.outcome.FaninEntropy, st.outcome.FaninSize, st.outcome.FaninOK = EvaluateFanin(st.askers, a.cfg)
	st.outcome.Expel = !st.outcome.FanoutOK || !st.outcome.FaninOK
	a.finish(target, st)
}

func (a *Auditor) finish(target msg.NodeID, st *auditState) {
	st.closed = true
	delete(a.pending, target)
	if a.onOutcome != nil {
		a.onOutcome(st.outcome)
	}
}
