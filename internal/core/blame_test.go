package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPartialServeBlameTable1(t *testing.T) {
	// Table 1: f·(|R|−|S|)/|R| from the receiver.
	cases := []struct {
		f, requested, served int
		want                 float64
	}{
		{7, 4, 4, 0},             // everything served
		{7, 4, 3, 7.0 / 4},       // one chunk short
		{7, 4, 0, 7},             // nothing served: same as not proposing
		{12, 4, 2, 6},            // half served
		{7, 0, 0, 0},             // nothing requested
		{7, 4, 5, 0},             // over-serving is not blamed
		{7, 4, -1, 7},            // clamped
		{12, 3, 1, 12.0 * 2 / 3}, // fractional
	}
	for i, c := range cases {
		if got := PartialServeBlame(c.f, c.requested, c.served); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: PartialServeBlame(%d,%d,%d) = %v, want %v", i, c.f, c.requested, c.served, got, c.want)
		}
	}
}

func TestFanoutBlameTable1(t *testing.T) {
	// Table 1: f − f̂ from each verifier.
	if got := FanoutBlame(7, 5); got != 2 {
		t.Fatalf("FanoutBlame(7,5) = %v, want 2", got)
	}
	if got := FanoutBlame(7, 7); got != 0 {
		t.Fatalf("FanoutBlame(7,7) = %v, want 0", got)
	}
	if got := FanoutBlame(7, 9); got != 0 {
		t.Fatalf("over-fanout should not be blamed, got %v", got)
	}
	if got := FanoutBlame(7, -1); got != 7 {
		t.Fatalf("FanoutBlame(7,-1) = %v, want 7", got)
	}
}

func TestNoAckBlame(t *testing.T) {
	if got := NoAckBlame(7); got != 7 {
		t.Fatalf("NoAckBlame(7) = %v, want 7 (Table 1: missing ack costs f)", got)
	}
}

func TestContradictionAndUnconfirmed(t *testing.T) {
	if got := ContradictionBlame(3); got != 3 {
		t.Fatalf("ContradictionBlame(3) = %v, want 3 (1 per invalid proposal)", got)
	}
	if got := ContradictionBlame(-1); got != 0 {
		t.Fatalf("negative contradictions should be 0, got %v", got)
	}
	if got := UnconfirmedHistoryBlame(5); got != 5 {
		t.Fatalf("UnconfirmedHistoryBlame(5) = %v, want 5", got)
	}
	if got := UnconfirmedHistoryBlame(-2); got != 0 {
		t.Fatalf("negative unconfirmed should be 0, got %v", got)
	}
}

func TestBlameValuesComparableProperty(t *testing.T) {
	// The paper's blames are "directly comparable": all non-negative and
	// bounded by f for single interactions.
	f := func(fanout uint8, requested, served uint8) bool {
		fo := int(fanout%16) + 1
		req := int(requested % 16)
		srv := int(served % 16)
		b := PartialServeBlame(fo, req, srv)
		if b < 0 || b > float64(fo)+1e-12 {
			return false
		}
		fb := FanoutBlame(fo, srv)
		return fb >= 0 && fb <= float64(fo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialServeMonotoneProperty(t *testing.T) {
	// Serving more never increases blame.
	f := func(served1, served2 uint8) bool {
		a, b := int(served1%10), int(served2%10)
		if a > b {
			a, b = b, a
		}
		return PartialServeBlame(7, 9, a) >= PartialServeBlame(7, 9, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
