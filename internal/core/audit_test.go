package core

import (
	"math"
	"testing"

	"lifting/internal/msg"
	"lifting/internal/stats"
)

func auditCfg() Config {
	return Config{
		F:              12,
		Period:         tg,
		Pdcc:           1,
		HistoryPeriods: 50,
		Gamma:          8.95,
		Eta:            -9.75,
	}
}

func TestEntropyThresholdScaling(t *testing.T) {
	// Full-size evidence uses γ unchanged.
	if got := EntropyThreshold(8.95, 600, 600); got != 8.95 {
		t.Fatalf("threshold at nominal size = %v, want 8.95", got)
	}
	if got := EntropyThreshold(8.95, 1000, 600); got != 8.95 {
		t.Fatalf("threshold above nominal size = %v, want 8.95", got)
	}
	// Half-size evidence scales down in log-space.
	half := EntropyThreshold(8.95, 300, 600)
	want := 8.95 * math.Log2(300) / math.Log2(600)
	if math.Abs(half-want) > 1e-12 {
		t.Fatalf("scaled threshold = %v, want %v", half, want)
	}
	if half >= 8.95 {
		t.Fatal("scaled threshold should be below γ")
	}
	// Degenerate sizes fall back to γ.
	if got := EntropyThreshold(8.95, 1, 600); got != 8.95 {
		t.Fatalf("degenerate size threshold = %v", got)
	}
}

// uniformProposals builds a history of one proposal per period to distinct
// partners (maximal entropy).
func uniformProposals(n int) []msg.ProposalRecord {
	out := make([]msg.ProposalRecord, n)
	for i := range out {
		out[i] = msg.ProposalRecord{
			Period:  msg.Period(i / 12),
			Partner: msg.NodeID(i + 1),
			Chunks:  []msg.ChunkID{msg.ChunkID(i)},
		}
	}
	return out
}

// biasedProposals concentrates all proposals on a small coalition.
func biasedProposals(n, coalition int) []msg.ProposalRecord {
	out := make([]msg.ProposalRecord, n)
	for i := range out {
		out[i] = msg.ProposalRecord{
			Period:  msg.Period(i / 12),
			Partner: msg.NodeID(i%coalition + 1),
			Chunks:  []msg.ChunkID{msg.ChunkID(i)},
		}
	}
	return out
}

func TestEvaluateFanoutHonestPasses(t *testing.T) {
	// 600 distinct partners: entropy = log2(600) ≈ 9.23 > 8.95.
	entropy, size, ok := EvaluateFanout(uniformProposals(600), auditCfg())
	if !ok {
		t.Fatalf("uniform fanout failed the audit: H=%v over %d", entropy, size)
	}
	if math.Abs(entropy-math.Log2(600)) > 1e-9 {
		t.Fatalf("entropy = %v, want log2(600)", entropy)
	}
}

func TestEvaluateFanoutColluderFails(t *testing.T) {
	// All pushes at a 25-node coalition: entropy ≈ log2(25) ≈ 4.6 < 8.95.
	entropy, _, ok := EvaluateFanout(biasedProposals(600, 25), auditCfg())
	if ok {
		t.Fatalf("coalition-concentrated fanout passed: H=%v", entropy)
	}
}

func TestEvaluateFanoutSkipsTinyEvidence(t *testing.T) {
	cfg := auditCfg()
	_, _, ok := EvaluateFanout(uniformProposals(10), cfg)
	if !ok {
		t.Fatal("evidence below MinEntropySamples must not condemn")
	}
}

func TestEvaluateFaninSeparates(t *testing.T) {
	cfg := auditCfg()
	honest := stats.NewMultiset[msg.NodeID]()
	for i := 0; i < 600; i++ {
		honest.Add(msg.NodeID(i))
	}
	if _, _, ok := EvaluateFanin(honest, cfg); !ok {
		t.Fatal("diverse fanin failed")
	}
	colluded := stats.NewMultiset[msg.NodeID]()
	for i := 0; i < 600; i++ {
		colluded.Add(msg.NodeID(i % 20))
	}
	if _, _, ok := EvaluateFanin(colluded, cfg); ok {
		t.Fatal("coalition fanin passed")
	}
}

func TestEvaluateFaninSeparateGamma(t *testing.T) {
	cfg := auditCfg()
	cfg.GammaFanin = 2.0
	skewed := stats.NewMultiset[msg.NodeID]()
	for i := 0; i < 600; i++ {
		skewed.Add(msg.NodeID(i % 30)) // H = log2(30) ≈ 4.9
	}
	if _, _, ok := EvaluateFanin(skewed, cfg); !ok {
		t.Fatal("fanin failed despite relaxed GammaFanin")
	}
	if _, _, ok := EvaluateFanout(biasedProposals(600, 30), cfg); ok {
		t.Fatal("fanout check must still use the strict Gamma")
	}
}

func TestPeriodStretchBlame(t *testing.T) {
	// 50 expected periods, 25 observed (a ×2 stretcher): blame 25.
	if got := PeriodStretchBlame(25, 50, 0.8); got != 25 {
		t.Fatalf("stretch blame = %v, want 25", got)
	}
	// Within slack: no blame.
	if got := PeriodStretchBlame(45, 50, 0.8); got != 0 {
		t.Fatalf("blame within slack = %v, want 0", got)
	}
	if got := PeriodStretchBlame(0, 0, 0.8); got != 0 {
		t.Fatalf("no expectation should mean no blame, got %v", got)
	}
}

func TestPopulationCapsNominal(t *testing.T) {
	// In a 64-node system the nominal entropy size is 63, not nh·f.
	cfg := auditCfg()
	cfg.Population = 64
	// 600 entries over 63 distinct partners: entropy ≈ log2(63) ≈ 5.98.
	props := make([]msg.ProposalRecord, 600)
	for i := range props {
		props[i] = msg.ProposalRecord{Partner: msg.NodeID(i%63 + 1)}
	}
	cfg.Gamma = 5.9
	if _, _, ok := EvaluateFanout(props, cfg); !ok {
		t.Fatal("maximally diverse fanout in a small system failed the audit")
	}
}
