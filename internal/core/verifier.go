package core

import (
	"sort"

	"lifting/internal/gossip"
	"lifting/internal/history"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

// Verifier is the per-node LiFTinG component. It implements gossip.Monitor
// (to observe the node's own protocol actions) and gossip.AuxHandler (to
// process verification traffic addressed to the node):
//
//   - requester side: direct verification of serves (§5.2);
//   - receiver side: the ack duty after each propose phase (§5.2);
//   - server side: direct cross-checking — await acks, poll witnesses with
//     probability pdcc, blame per Table 1;
//   - witness side: answer Confirm messages from its history and record the
//     askers (the raw material of the fanin audit, §5.3);
//   - audited side: serve AuditReq/AuditPoll messages.
//
// A Verifier is driven entirely by its node's execution context; it has no
// goroutines of its own.
type Verifier struct {
	self     msg.NodeID
	cfg      Config
	ctx      sim.Context
	netw     net.Network
	rand     *rng.Stream
	hist     *history.Log
	behavior gossip.Behavior
	sink     BlameSink

	serveChecks  []*serveCheck
	expectations map[msg.NodeID][]*ackExpectation
	sessions     map[sessionKey]*confirmSession
}

// serveCheck tracks one sent request: the requested chunks must arrive
// before the serve timeout.
type serveCheck struct {
	server   msg.NodeID
	missing  map[msg.ChunkID]bool
	total    int
	resolved bool
}

// ackExpectation tracks one serve batch: the receiver must acknowledge
// forwarding these chunks within the ack timeout.
type ackExpectation struct {
	chunks    []msg.ChunkID
	satisfied bool
}

type sessionKey struct {
	suspect msg.NodeID
	period  msg.Period
}

// confirmSession collects witness answers about one suspect ack.
type confirmSession struct {
	witnesses []msg.NodeID
	positive  map[msg.NodeID]bool
	closed    bool
}

// NewVerifier creates the LiFTinG component of one node. behavior is the
// node's own behavior (honest verifiers follow the protocol; freerider
// behaviors lie in acks, confirmations and audits). cfg zero-timeouts are
// defaulted from the period.
func NewVerifier(self msg.NodeID, cfg Config, ctx sim.Context, netw net.Network, rand *rng.Stream, hist *history.Log, behavior gossip.Behavior, sink BlameSink) *Verifier {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if behavior == nil {
		behavior = gossip.Honest{}
	}
	return &Verifier{
		self:         self,
		cfg:          cfg.withDefaults(),
		ctx:          ctx,
		netw:         netw,
		rand:         rand,
		hist:         hist,
		behavior:     behavior,
		sink:         sink,
		expectations: make(map[msg.NodeID][]*ackExpectation),
		sessions:     make(map[sessionKey]*confirmSession),
	}
}

var (
	_ gossip.Monitor    = (*Verifier)(nil)
	_ gossip.AuxHandler = (*Verifier)(nil)
)

func (v *Verifier) blame(target msg.NodeID, value float64, reason msg.BlameReason) {
	if v.sink != nil && value > 0 {
		v.sink.Blame(target, value, reason)
	}
}

// --- gossip.Monitor ---

// OnProposePhase implements gossip.Monitor: the ack duty. For every node
// that served chunks during the previous period, send an Ack naming the
// chunks forwarded and the partners they went to (§5.2). Freerider behaviors
// may lie about both.
func (v *Verifier) OnProposePhase(p msg.Period, partners []msg.NodeID, proposed []msg.ChunkID, serversLastPeriod map[msg.NodeID][]msg.ChunkID) {
	// Bad-mouthing behaviors piggyback fabricated blames on the period
	// boundary; the sink routes them like any verification blame because
	// managers cannot tell them apart (§5.1).
	for _, a := range v.behavior.SpamBlames(v.rand) {
		v.blame(a.Target, a.Value, a.Reason)
	}
	if len(serversLastPeriod) == 0 {
		return
	}
	claimedPartners := v.behavior.AckPartners(partners)
	servers := make([]msg.NodeID, 0, len(serversLastPeriod))
	//lint:allow ordered-map-range collect-then-sort: keys are sorted before acks are sent
	for server := range serversLastPeriod {
		servers = append(servers, server)
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	for _, server := range servers {
		ackChunks := v.behavior.AckChunks(serversLastPeriod[server], proposed)
		v.netw.Send(v.self, server, &msg.Ack{
			Sender:   v.self,
			Period:   p,
			Chunks:   ackChunks,
			Partners: claimedPartners,
		}, net.Unreliable)
	}
}

// OnRequestSent implements gossip.Monitor: direct verification. The
// requested chunks must arrive before the serve timeout or the proposer is
// blamed f·|missing|/|R| (Table 1).
func (v *Verifier) OnRequestSent(proposer msg.NodeID, _ msg.Period, requested []msg.ChunkID) {
	if len(requested) == 0 {
		return
	}
	sc := &serveCheck{
		server:  proposer,
		missing: make(map[msg.ChunkID]bool, len(requested)),
		total:   len(requested),
	}
	for _, c := range requested {
		sc.missing[c] = true
	}
	v.serveChecks = append(v.serveChecks, sc)
	v.ctx.After(v.cfg.ServeTimeout, func() {
		sc.resolved = true
		if n := len(sc.missing); n > 0 {
			v.blame(sc.server, PartialServeBlame(v.cfg.F, sc.total, sc.total-n), msg.ReasonPartialServe)
		}
		v.gcServeChecks()
	})
}

// OnServeReceived implements gossip.Monitor: mark a requested chunk as
// delivered.
func (v *Verifier) OnServeReceived(server msg.NodeID, chunk msg.ChunkID) {
	for _, sc := range v.serveChecks {
		if sc.resolved || sc.server != server {
			continue
		}
		if sc.missing[chunk] {
			delete(sc.missing, chunk)
			return
		}
	}
}

// OnServeInvalid implements gossip.Monitor: content-plane verification. A
// serve whose payload is missing or fails hash verification is as useless as
// no serve at all, so the server is blamed f immediately. The chunk is
// cleared from the pending serve check so the serve timeout does not blame
// the same failure twice.
func (v *Verifier) OnServeInvalid(server msg.NodeID, chunk msg.ChunkID) {
	for _, sc := range v.serveChecks {
		if sc.resolved || sc.server != server {
			continue
		}
		if sc.missing[chunk] {
			delete(sc.missing, chunk)
			break
		}
	}
	v.blame(server, InvalidPayloadBlame(v.cfg.F), msg.ReasonInvalidPayload)
}

// OnServed implements gossip.Monitor: direct cross-checking, server side.
// The receiver must acknowledge forwarding the served chunks within the ack
// timeout, or be blamed f (§5.2).
func (v *Verifier) OnServed(receiver msg.NodeID, _ msg.Period, served []msg.ChunkID) {
	exp := &ackExpectation{chunks: served}
	v.expectations[receiver] = append(v.expectations[receiver], exp)
	v.ctx.After(v.cfg.AckTimeout, func() {
		if !exp.satisfied {
			exp.satisfied = true // close it; blame exactly once
			v.blame(receiver, NoAckBlame(v.cfg.F), msg.ReasonNoAck)
		}
		v.gcExpectations(receiver)
	})
}

func (v *Verifier) gcServeChecks() {
	live := v.serveChecks[:0]
	for _, sc := range v.serveChecks {
		if !sc.resolved {
			live = append(live, sc)
		}
	}
	v.serveChecks = live
}

func (v *Verifier) gcExpectations(receiver msg.NodeID) {
	exps := v.expectations[receiver]
	live := exps[:0]
	for _, e := range exps {
		if !e.satisfied {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		delete(v.expectations, receiver)
		return
	}
	v.expectations[receiver] = live
}

// --- gossip.AuxHandler ---

// HandleAux implements gossip.AuxHandler: verification traffic addressed to
// this node.
func (v *Verifier) HandleAux(from msg.NodeID, m msg.Message) bool {
	switch mm := m.(type) {
	case *msg.Ack:
		v.onAck(from, mm)
	case *msg.Confirm:
		v.onConfirm(from, mm)
	case *msg.ConfirmResp:
		v.onConfirmResp(from, mm)
	case *msg.AuditReq:
		v.onAuditReq(from, mm)
	case *msg.AuditPoll:
		v.onAuditPoll(from, mm)
	default:
		return false
	}
	return true
}

// onAck is the server-side handling of a receiver's acknowledgement: check
// the claimed fanout, match pending expectations, and with probability pdcc
// launch the witness poll.
func (v *Verifier) onAck(from msg.NodeID, ack *msg.Ack) {
	if len(ack.Partners) < v.cfg.F {
		v.blame(from, FanoutBlame(v.cfg.F, len(ack.Partners)), msg.ReasonFanoutDecrease)
	}
	acked := make(map[msg.ChunkID]bool, len(ack.Chunks))
	for _, c := range ack.Chunks {
		acked[c] = true
	}
	for _, exp := range v.expectations[from] {
		if exp.satisfied {
			continue
		}
		covered := true
		for _, c := range exp.chunks {
			if !acked[c] {
				covered = false
				break
			}
		}
		if !covered {
			// The ack does not cover this serve batch; leave the
			// expectation pending — the timeout will blame f ((a) in
			// Equation 3 of the analysis).
			continue
		}
		exp.satisfied = true
		if len(ack.Partners) > 0 && v.rand.Bernoulli(v.cfg.Pdcc) {
			v.startConfirmSession(from, ack, exp.chunks)
		}
	}
	v.gcExpectations(from)
}

func (v *Verifier) startConfirmSession(suspect msg.NodeID, ack *msg.Ack, chunks []msg.ChunkID) {
	key := sessionKey{suspect: suspect, period: ack.Period}
	if _, dup := v.sessions[key]; dup {
		// One session per suspect propose phase is enough: a second serve
		// batch covered by the same ack shares the same testimony.
		return
	}
	s := &confirmSession{
		witnesses: ack.Partners,
		positive:  make(map[msg.NodeID]bool, len(ack.Partners)),
	}
	v.sessions[key] = s
	for _, w := range ack.Partners {
		v.netw.Send(v.self, w, &msg.Confirm{
			Sender:  v.self,
			Suspect: suspect,
			Period:  ack.Period,
			Chunks:  chunks,
		}, net.Unreliable)
	}
	v.ctx.After(v.cfg.ConfirmTimeout, func() {
		s.closed = true
		contradictions := 0
		for _, w := range s.witnesses {
			if !s.positive[w] {
				contradictions++
			}
		}
		v.blame(suspect, ContradictionBlame(contradictions), msg.ReasonPartialPropose)
		delete(v.sessions, key)
	})
}

// onConfirm is the witness duty: answer from the local history and record
// the asker for the fanin audit (§5.3).
func (v *Verifier) onConfirm(from msg.NodeID, c *msg.Confirm) {
	truth := v.hist.HasRecentProposalFrom(c.Suspect, c.Chunks)
	answer := v.behavior.ConfirmAnswer(c.Suspect, truth)
	v.hist.RecordConfirmAsker(v.hist.Newest(), c.Suspect, from)
	v.netw.Send(v.self, from, &msg.ConfirmResp{
		Sender:    v.self,
		Suspect:   c.Suspect,
		Period:    c.Period,
		Confirmed: answer,
	}, net.Unreliable)
}

func (v *Verifier) onConfirmResp(from msg.NodeID, r *msg.ConfirmResp) {
	s, ok := v.sessions[sessionKey{suspect: r.Suspect, period: r.Period}]
	if !ok || s.closed {
		return
	}
	if r.Confirmed {
		s.positive[from] = true
	}
}

// onAuditReq serves a history snapshot over the reliable transport,
// possibly forged by a freerider behavior.
func (v *Verifier) onAuditReq(from msg.NodeID, req *msg.AuditReq) {
	horizon := v.cfg.HistoryPeriods
	if req.Horizon > 0 {
		if periods := int(req.Horizon / v.cfg.Period); periods > 0 && periods < horizon {
			horizon = periods
		}
	}
	snap := v.hist.Snapshot(v.self, horizon)
	snap = v.behavior.ForgeAudit(snap)
	v.netw.Send(v.self, from, snap, net.Reliable)
}

// onAuditPoll answers an a-posteriori cross-check: did the suspect really
// propose these chunks to me, and who asked me to confirm the suspect's
// pushes (the fanin evidence).
func (v *Verifier) onAuditPoll(from msg.NodeID, p *msg.AuditPoll) {
	truth := v.hist.HasRecentProposalFrom(p.Suspect, p.Chunks)
	answer := v.behavior.ConfirmAnswer(p.Suspect, truth)
	v.netw.Send(v.self, from, &msg.AuditPollResp{
		Sender:    v.self,
		Suspect:   p.Suspect,
		Period:    p.Period,
		Confirmed: answer,
		Askers:    v.hist.AskersFor(p.Suspect, 0),
	}, net.Reliable)
}
