package core

import (
	"testing"
	"time"

	"lifting/internal/gossip"
	"lifting/internal/history"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

const tg = 100 * time.Millisecond

func testCfg() Config {
	return Config{
		F:              3,
		Period:         tg,
		Pdcc:           1,
		HistoryPeriods: 50,
		Gamma:          8.95,
		Eta:            -9.75,
	}
}

type blameRec struct {
	target msg.NodeID
	value  float64
	reason msg.BlameReason
}

type sinkRec struct{ blames []blameRec }

func (s *sinkRec) Blame(target msg.NodeID, value float64, reason msg.BlameReason) {
	s.blames = append(s.blames, blameRec{target, value, reason})
}

func (s *sinkRec) total(reason msg.BlameReason) float64 {
	var v float64
	for _, b := range s.blames {
		if b.reason == reason {
			v += b.value
		}
	}
	return v
}

// rig is a one-verifier test rig: verifier at node 1, messages captured.
type rig struct {
	eng  *sim.Engine
	netw *net.SimNet
	v    *Verifier
	sink *sinkRec
	hist *history.Log
	sent map[msg.NodeID][]msg.Message // messages delivered to other nodes
}

func newRig(t *testing.T, cfg Config, behavior gossip.Behavior) *rig {
	t.Helper()
	r := &rig{
		eng:  sim.NewEngine(),
		sink: &sinkRec{},
		hist: history.NewLog(cfg.HistoryPeriods),
		sent: make(map[msg.NodeID][]msg.Message),
	}
	r.netw = net.NewSimNet(r.eng, rng.New(7), metrics.NewCollector(), net.Uniform(0, time.Millisecond))
	r.v = NewVerifier(1, cfg, r.eng, r.netw, rng.New(9), r.hist, behavior, r.sink)
	for id := msg.NodeID(0); id < 10; id++ {
		if id == 1 {
			continue
		}
		id := id
		r.netw.Attach(id, capture{func(from msg.NodeID, m msg.Message) {
			r.sent[id] = append(r.sent[id], m)
		}})
	}
	return r
}

type capture struct {
	fn func(from msg.NodeID, m msg.Message)
}

func (c capture) HandleMessage(from msg.NodeID, m msg.Message) { c.fn(from, m) }

func TestNewVerifierPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewVerifier(1, Config{}, sim.NewEngine(), nil, rng.New(1), nil, nil, nil)
}

func TestDirectVerificationBlamesMissingServes(t *testing.T) {
	// Request 4 chunks from node 2, receive only 1: blame f·3/4.
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnRequestSent(2, 1, []msg.ChunkID{10, 11, 12, 13})
	r.v.OnServeReceived(2, 10)
	r.eng.Run(time.Second)
	want := PartialServeBlame(3, 4, 1)
	if got := r.sink.total(msg.ReasonPartialServe); got != want {
		t.Fatalf("partial-serve blame = %v, want %v", got, want)
	}
}

func TestDirectVerificationNoBlameWhenServed(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnRequestSent(2, 1, []msg.ChunkID{10, 11})
	r.v.OnServeReceived(2, 10)
	r.v.OnServeReceived(2, 11)
	r.eng.Run(time.Second)
	if got := r.sink.total(msg.ReasonPartialServe); got != 0 {
		t.Fatalf("blame despite full serve: %v", got)
	}
}

func TestDirectVerificationSeparatesServers(t *testing.T) {
	// Chunks served by node 3 must not satisfy a check against node 2.
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnRequestSent(2, 1, []msg.ChunkID{10})
	r.v.OnServeReceived(3, 10)
	r.eng.Run(time.Second)
	if got := r.sink.total(msg.ReasonPartialServe); got != 3 {
		t.Fatalf("blame = %v, want f=3 (server 2 never delivered)", got)
	}
}

func TestNoAckBlameAfterTimeout(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnServed(2, 1, []msg.ChunkID{20, 21})
	r.eng.Run(time.Second)
	if got := r.sink.total(msg.ReasonNoAck); got != 3 {
		t.Fatalf("no-ack blame = %v, want f=3", got)
	}
}

func TestAckSatisfiesExpectation(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnServed(2, 1, []msg.ChunkID{20, 21})
	r.v.HandleAux(2, &msg.Ack{Sender: 2, Period: 5, Chunks: []msg.ChunkID{20, 21}, Partners: []msg.NodeID{3, 4, 5}})
	r.eng.Run(time.Second)
	if got := r.sink.total(msg.ReasonNoAck); got != 0 {
		t.Fatalf("no-ack blame despite ack: %v", got)
	}
}

func TestIncompleteAckStillBlamed(t *testing.T) {
	// Ack covering only part of the served chunks leaves the expectation
	// pending: blame f at the timeout ((a) of Equation 3).
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnServed(2, 1, []msg.ChunkID{20, 21})
	r.v.HandleAux(2, &msg.Ack{Sender: 2, Period: 5, Chunks: []msg.ChunkID{20}, Partners: []msg.NodeID{3, 4, 5}})
	r.eng.Run(time.Second)
	if got := r.sink.total(msg.ReasonNoAck); got != 3 {
		t.Fatalf("incomplete ack blame = %v, want 3", got)
	}
}

func TestFanoutDecreaseBlamedOnAck(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnServed(2, 1, []msg.ChunkID{20})
	r.v.HandleAux(2, &msg.Ack{Sender: 2, Period: 5, Chunks: []msg.ChunkID{20}, Partners: []msg.NodeID{3}})
	r.eng.Run(time.Second)
	if got := r.sink.total(msg.ReasonFanoutDecrease); got != 2 {
		t.Fatalf("fanout blame = %v, want f−f̂ = 2", got)
	}
}

func TestCrossCheckConfirmsWithWitnesses(t *testing.T) {
	// With pdcc = 1, a satisfied ack triggers Confirm messages to every
	// claimed partner; silent witnesses count as contradictions.
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnServed(2, 1, []msg.ChunkID{20})
	r.v.HandleAux(2, &msg.Ack{Sender: 2, Period: 5, Chunks: []msg.ChunkID{20}, Partners: []msg.NodeID{3, 4, 5}})
	r.eng.Run(time.Second)
	for _, w := range []msg.NodeID{3, 4, 5} {
		found := false
		for _, m := range r.sent[w] {
			if c, ok := m.(*msg.Confirm); ok && c.Suspect == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("witness %d received no confirm", w)
		}
	}
	if got := r.sink.total(msg.ReasonPartialPropose); got != 3 {
		t.Fatalf("contradiction blame = %v, want 3 (all witnesses silent)", got)
	}
}

func TestPositiveConfirmationsClearSuspect(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnServed(2, 1, []msg.ChunkID{20})
	r.v.HandleAux(2, &msg.Ack{Sender: 2, Period: 5, Chunks: []msg.ChunkID{20}, Partners: []msg.NodeID{3, 4}})
	// Witnesses confirm before the timeout.
	r.eng.After(10*time.Millisecond, func() {
		r.v.HandleAux(3, &msg.ConfirmResp{Sender: 3, Suspect: 2, Period: 5, Confirmed: true})
		r.v.HandleAux(4, &msg.ConfirmResp{Sender: 4, Suspect: 2, Period: 5, Confirmed: true})
	})
	r.eng.Run(time.Second)
	if got := r.sink.total(msg.ReasonPartialPropose); got != 0 {
		t.Fatalf("blame despite positive confirmations: %v", got)
	}
	// ... but the fanout was 2 < 3, so that blame still applies.
	if got := r.sink.total(msg.ReasonFanoutDecrease); got != 1 {
		t.Fatalf("fanout blame = %v, want 1", got)
	}
}

func TestContradictingWitnessBlames(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	r.v.OnServed(2, 1, []msg.ChunkID{20})
	r.v.HandleAux(2, &msg.Ack{Sender: 2, Period: 5, Chunks: []msg.ChunkID{20}, Partners: []msg.NodeID{3, 4, 5}})
	r.eng.After(10*time.Millisecond, func() {
		r.v.HandleAux(3, &msg.ConfirmResp{Sender: 3, Suspect: 2, Period: 5, Confirmed: true})
		r.v.HandleAux(4, &msg.ConfirmResp{Sender: 4, Suspect: 2, Period: 5, Confirmed: false})
		// witness 5 stays silent
	})
	r.eng.Run(time.Second)
	if got := r.sink.total(msg.ReasonPartialPropose); got != 2 {
		t.Fatalf("contradiction blame = %v, want 2 (one no + one silent)", got)
	}
}

func TestPdccZeroNeverConfirms(t *testing.T) {
	cfg := testCfg()
	cfg.Pdcc = 0
	r := newRig(t, cfg, gossip.Honest{})
	r.v.OnServed(2, 1, []msg.ChunkID{20})
	r.v.HandleAux(2, &msg.Ack{Sender: 2, Period: 5, Chunks: []msg.ChunkID{20}, Partners: []msg.NodeID{3, 4, 5}})
	r.eng.Run(time.Second)
	for _, w := range []msg.NodeID{3, 4, 5} {
		for _, m := range r.sent[w] {
			if _, ok := m.(*msg.Confirm); ok {
				t.Fatal("confirm sent despite pdcc=0")
			}
		}
	}
}

func TestWitnessDutyAnswersFromHistory(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	// Node 1 (the verifier's host) received a proposal from node 6 with
	// chunks 30,31.
	r.hist.RecordProposalReceived(1, 6, []msg.ChunkID{30, 31})
	r.v.HandleAux(7, &msg.Confirm{Sender: 7, Suspect: 6, Period: 2, Chunks: []msg.ChunkID{30}})
	r.v.HandleAux(7, &msg.Confirm{Sender: 7, Suspect: 6, Period: 2, Chunks: []msg.ChunkID{99}})
	r.eng.Run(time.Second)
	var answers []bool
	for _, m := range r.sent[7] {
		if cr, ok := m.(*msg.ConfirmResp); ok {
			answers = append(answers, cr.Confirmed)
		}
	}
	if len(answers) != 2 || answers[0] != true || answers[1] != false {
		t.Fatalf("witness answers = %v, want [true false]", answers)
	}
	// The asker was recorded for the fanin audit.
	if got := r.hist.AskersFor(6, 0); len(got) != 2 || got[0] != 7 {
		t.Fatalf("askers = %v, want two entries for node 7", got)
	}
}

func TestAckDutySendsAcks(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	servers := map[msg.NodeID][]msg.ChunkID{
		2: {10, 11},
		3: {12},
	}
	r.v.OnProposePhase(4, []msg.NodeID{5, 6, 7}, []msg.ChunkID{10, 11, 12}, servers)
	r.eng.Run(time.Second)
	for server, chunks := range servers {
		var ack *msg.Ack
		for _, m := range r.sent[server] {
			if a, ok := m.(*msg.Ack); ok {
				ack = a
			}
		}
		if ack == nil {
			t.Fatalf("server %d received no ack", server)
		}
		if len(ack.Chunks) != len(chunks) {
			t.Fatalf("ack to %d has %d chunks, want %d", server, len(ack.Chunks), len(chunks))
		}
		if len(ack.Partners) != 3 {
			t.Fatalf("ack partners = %v, want the 3 real partners", ack.Partners)
		}
	}
}

func TestAuditReqServesForgedSnapshot(t *testing.T) {
	forger := forgingBehavior{}
	r := newRig(t, testCfg(), forger)
	r.hist.RecordProposalSent(1, 2, []msg.ChunkID{1})
	r.v.HandleAux(8, &msg.AuditReq{Sender: 8, Horizon: time.Hour})
	r.eng.Run(time.Second)
	var resp *msg.AuditResp
	for _, m := range r.sent[8] {
		if a, ok := m.(*msg.AuditResp); ok {
			resp = a
		}
	}
	if resp == nil {
		t.Fatal("no audit response")
	}
	if len(resp.Proposals) != 1 || resp.Proposals[0].Partner != 42 {
		t.Fatalf("snapshot not forged: %+v", resp.Proposals)
	}
}

type forgingBehavior struct{ gossip.Honest }

func (forgingBehavior) ForgeAudit(resp *msg.AuditResp) *msg.AuditResp {
	out := *resp
	out.Proposals = make([]msg.ProposalRecord, len(resp.Proposals))
	copy(out.Proposals, resp.Proposals)
	for i := range out.Proposals {
		out.Proposals[i].Partner = 42
	}
	return &out
}

func TestAuditPollAnswers(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	r.hist.RecordProposalReceived(3, 6, []msg.ChunkID{50})
	r.hist.RecordConfirmAsker(3, 6, 9)
	r.v.HandleAux(8, &msg.AuditPoll{Sender: 8, Suspect: 6, Period: 3, Chunks: []msg.ChunkID{50}})
	r.eng.Run(time.Second)
	var resp *msg.AuditPollResp
	for _, m := range r.sent[8] {
		if a, ok := m.(*msg.AuditPollResp); ok {
			resp = a
		}
	}
	if resp == nil {
		t.Fatal("no poll response")
	}
	if !resp.Confirmed {
		t.Fatal("poll should confirm a recorded proposal")
	}
	if len(resp.Askers) != 1 || resp.Askers[0] != 9 {
		t.Fatalf("askers = %v, want [9]", resp.Askers)
	}
}

func TestHandleAuxIgnoresGossipKinds(t *testing.T) {
	r := newRig(t, testCfg(), gossip.Honest{})
	if r.v.HandleAux(2, &msg.Propose{Sender: 2}) {
		t.Fatal("verifier claimed a propose message")
	}
	if r.v.HandleAux(2, &msg.Blame{Sender: 2}) {
		t.Fatal("verifier claimed a blame message (manager duty)")
	}
}

// spamBehavior emits fixed accusations at every propose phase.
type spamBehavior struct {
	gossip.Honest
	acc []gossip.Accusation
}

func (s spamBehavior) SpamBlames(*rng.Stream) []gossip.Accusation { return s.acc }

func TestSpamBlamesRoutedAtProposePhase(t *testing.T) {
	acc := []gossip.Accusation{
		{Target: 4, Value: 3, Reason: msg.ReasonNoAck},
		{Target: 5, Value: 7, Reason: msg.ReasonNoAck},
	}
	r := newRig(t, testCfg(), spamBehavior{acc: acc})
	// Spam flows even on a phase with nothing proposed and no servers.
	r.v.OnProposePhase(1, nil, nil, nil)
	r.v.OnProposePhase(2, nil, nil, nil)
	if got := r.sink.total(msg.ReasonNoAck); got != 20 {
		t.Fatalf("spam blame total = %v, want 20 (2 accusations x 2 periods)", got)
	}
	// Honest behaviors never spam.
	h := newRig(t, testCfg(), gossip.Honest{})
	h.v.OnProposePhase(1, nil, nil, nil)
	if len(h.sink.blames) != 0 {
		t.Fatalf("honest propose phase emitted blames: %+v", h.sink.blames)
	}
}
