package core

import (
	"testing"
	"time"

	"lifting/internal/gossip"
	"lifting/internal/history"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

// auditRig hosts an Auditor at node 0 and a set of scripted peers.
type auditRig struct {
	eng      *sim.Engine
	netw     *net.SimNet
	auditor  *Auditor
	sink     *sinkRec
	outcomes []AuditOutcome
}

func newAuditRig(t *testing.T, cfg Config) *auditRig {
	t.Helper()
	r := &auditRig{eng: sim.NewEngine(), sink: &sinkRec{}}
	r.netw = net.NewSimNet(r.eng, rng.New(5), metrics.NewCollector(), net.Uniform(0, time.Millisecond))
	r.auditor = NewAuditor(0, cfg, r.eng, r.netw, rng.New(6), r.sink,
		func(out AuditOutcome) { r.outcomes = append(r.outcomes, out) })
	r.netw.Attach(0, capture{func(from msg.NodeID, m msg.Message) {
		r.auditor.HandleAux(from, m)
	}})
	return r
}

// attachVerifier gives node id a real Verifier over the given history.
func (r *auditRig) attachVerifier(id msg.NodeID, hist *history.Log, behavior gossip.Behavior) *Verifier {
	v := NewVerifier(id, auditCfg(), r.eng, r.netw, rng.New(uint64(id)), hist, behavior, nil)
	r.netw.Attach(id, capture{func(from msg.NodeID, m msg.Message) {
		v.HandleAux(from, m)
	}})
	return v
}

func TestAuditorExpelsUnresponsiveTarget(t *testing.T) {
	cfg := auditCfg()
	r := newAuditRig(t, cfg)
	// Target 9 is not attached: the audit request goes nowhere.
	r.auditor.Audit(9)
	r.eng.Run(time.Minute)
	if len(r.outcomes) != 1 {
		t.Fatalf("outcomes = %d, want 1", len(r.outcomes))
	}
	out := r.outcomes[0]
	if out.Responded {
		t.Fatal("unresponsive target marked as responded")
	}
	if !out.Expel {
		t.Fatal("refusing an audit must be treated as failing it")
	}
}

func TestAuditorHonestEndToEnd(t *testing.T) {
	cfg := auditCfg()
	cfg.Gamma = 5.0
	cfg.MinEntropySamples = 16
	r := newAuditRig(t, cfg)

	// Build an honest world: node 1's history says it proposed to nodes
	// 2..61 over 50 periods; each receiver's history corroborates.
	h1 := history.NewLog(50)
	for p := msg.Period(1); p <= 50; p++ {
		partner := msg.NodeID(2 + (int(p)*7)%60)
		chunks := []msg.ChunkID{msg.ChunkID(p)}
		h1.RecordProposalSent(p, partner, chunks)
		h1.RecordServeReceived(p, msg.NodeID(2+(int(p)*11)%60), chunks)
	}
	r.attachVerifier(1, h1, gossip.Honest{})
	for i := 2; i < 62; i++ {
		hw := history.NewLog(50)
		// Receivers log the proposals node 1 sent them.
		for p := msg.Period(1); p <= 50; p++ {
			if msg.NodeID(2+(int(p)*7)%60) == msg.NodeID(i) {
				hw.RecordProposalReceived(p, 1, []msg.ChunkID{msg.ChunkID(p)})
				// Their recorded confirm-askers (node 1's servers) are
				// diverse.
				hw.RecordConfirmAsker(p, 1, msg.NodeID(2+(int(p)*11)%60))
			}
		}
		r.attachVerifier(msg.NodeID(i), hw, gossip.Honest{})
	}

	r.auditor.Audit(1)
	r.eng.Run(time.Minute)
	if len(r.outcomes) != 1 {
		t.Fatalf("outcomes = %d, want 1", len(r.outcomes))
	}
	out := r.outcomes[0]
	if !out.Responded {
		t.Fatal("target did not respond")
	}
	if out.Expel {
		t.Fatalf("honest node expelled: %+v", out)
	}
	if out.Unconfirmed != 0 {
		t.Fatalf("honest history had %d unconfirmed entries", out.Unconfirmed)
	}
	if out.PeriodBlame != 0 {
		t.Fatalf("honest node blamed %v for period stretching", out.PeriodBlame)
	}
	if out.Polled == 0 {
		t.Fatal("a-posteriori cross-check polled nothing")
	}
}

func TestAuditorForgedHistoryBlamed(t *testing.T) {
	// A freerider rewrites its history to claim proposals to honest nodes
	// that never received them: the a-posteriori cross-check blames 1 per
	// unconfirmed entry (§5.3).
	cfg := auditCfg()
	cfg.Gamma = 5.0
	cfg.MinEntropySamples = 16
	r := newAuditRig(t, cfg)

	h1 := history.NewLog(50)
	for p := msg.Period(1); p <= 50; p++ {
		// Claims diverse partners…
		h1.RecordProposalSent(p, msg.NodeID(2+int(p)%60), []msg.ChunkID{msg.ChunkID(p)})
	}
	r.attachVerifier(1, h1, gossip.Honest{})
	// …but the alleged receivers know nothing.
	for i := 2; i < 62; i++ {
		r.attachVerifier(msg.NodeID(i), history.NewLog(50), gossip.Honest{})
	}

	r.auditor.Audit(1)
	r.eng.Run(time.Minute)
	out := r.outcomes[0]
	if out.Unconfirmed != out.Polled || out.Unconfirmed == 0 {
		t.Fatalf("unconfirmed = %d of %d polled, want all", out.Unconfirmed, out.Polled)
	}
	if got := r.sink.total(msg.ReasonAuditUnconfirmed); got != float64(out.Unconfirmed) {
		t.Fatalf("audit blame = %v, want %d", got, out.Unconfirmed)
	}
}

func TestAuditorPeriodStretchDetected(t *testing.T) {
	// Proposals only every other period over a 50-period span.
	cfg := auditCfg()
	cfg.Gamma = 0 // isolate the period check
	r := newAuditRig(t, cfg)

	h1 := history.NewLog(50)
	for p := msg.Period(1); p <= 50; p += 2 {
		partner := msg.NodeID(2 + int(p)%10)
		h1.RecordProposalSent(p, partner, []msg.ChunkID{msg.ChunkID(p)})
	}
	r.attachVerifier(1, h1, gossip.Honest{})
	for i := 2; i < 12; i++ {
		hw := history.NewLog(50)
		for p := msg.Period(1); p <= 50; p += 2 {
			if msg.NodeID(2+int(p)%10) == msg.NodeID(i) {
				hw.RecordProposalReceived(p, 1, []msg.ChunkID{msg.ChunkID(p)})
			}
		}
		r.attachVerifier(msg.NodeID(i), hw, gossip.Honest{})
	}

	// The expected phase count comes from the auditor's wall clock: 50
	// periods have elapsed, the snapshot shows only 25 propose phases.
	r.eng.Run(50 * cfg.Period)
	r.auditor.Audit(1)
	r.eng.Run(50*cfg.Period + time.Minute)
	out := r.outcomes[0]
	if out.PeriodBlame <= 0 {
		t.Fatalf("period stretching not blamed: %+v", out)
	}
	if r.sink.total(msg.ReasonPeriodStretch) != out.PeriodBlame {
		t.Fatal("period blame not routed to the sink")
	}
}

func TestAuditorMaxPollsSampled(t *testing.T) {
	cfg := auditCfg()
	cfg.MaxAuditPolls = 5
	r := newAuditRig(t, cfg)
	h1 := history.NewLog(50)
	for p := msg.Period(1); p <= 50; p++ {
		h1.RecordProposalSent(p, msg.NodeID(2+int(p)), []msg.ChunkID{msg.ChunkID(p)})
	}
	r.attachVerifier(1, h1, gossip.Honest{})
	r.auditor.Audit(1)
	r.eng.Run(time.Minute)
	out := r.outcomes[0]
	if out.Polled != 5 {
		t.Fatalf("polled %d entries, want MaxAuditPolls = 5", out.Polled)
	}
}

func TestAuditorCoalescesConcurrentAudits(t *testing.T) {
	cfg := auditCfg()
	r := newAuditRig(t, cfg)
	r.auditor.Audit(9)
	r.auditor.Audit(9)
	r.eng.Run(time.Minute)
	if len(r.outcomes) != 1 {
		t.Fatalf("outcomes = %d, want 1 (coalesced)", len(r.outcomes))
	}
}
