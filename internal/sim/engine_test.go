package sim

import (
	"testing"
	"time"
)

func TestOrderingByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30*time.Millisecond, func() { order = append(order, 3) })
	e.After(10*time.Millisecond, func() { order = append(order, 1) })
	e.After(20*time.Millisecond, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*time.Millisecond, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.After(42*time.Millisecond, func() { at = e.Now() })
	e.RunAll()
	if at != 42*time.Millisecond {
		t.Fatalf("Now inside event = %v, want 42ms", at)
	}
	if e.Now() != 42*time.Millisecond {
		t.Fatalf("Now after run = %v, want 42ms", e.Now())
	}
}

func TestNegativeDelayRunsNow(t *testing.T) {
	e := NewEngine()
	e.After(10*time.Millisecond, func() {
		e.After(-5*time.Millisecond, func() {
			if e.Now() != 10*time.Millisecond {
				t.Errorf("negative-delay event ran at %v", e.Now())
			}
		})
	})
	e.RunAll()
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(time.Millisecond, rec)
		}
	}
	e.After(0, rec)
	n := e.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if n != 100 {
		t.Fatalf("events executed = %d, want 100", n)
	}
}

func TestRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	ran := map[int]bool{}
	e.After(10*time.Millisecond, func() { ran[10] = true })
	e.After(20*time.Millisecond, func() { ran[20] = true })
	e.After(30*time.Millisecond, func() { ran[30] = true })
	e.Run(20 * time.Millisecond)
	if !ran[10] || !ran[20] {
		t.Fatal("events at or before the boundary did not run")
	}
	if ran[30] {
		t.Fatal("event after the boundary ran")
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// Resuming picks the remaining event up.
	e.Run(time.Second)
	if !ran[30] {
		t.Fatal("resumed run did not execute the remaining event")
	}
}

func TestRunAdvancesClockToUntil(t *testing.T) {
	e := NewEngine()
	e.Run(time.Second)
	if e.Now() != time.Second {
		t.Fatalf("empty Run should advance clock to until; got %v", e.Now())
	}
}

func TestAtAbsolute(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.After(10*time.Millisecond, func() {
		e.At(15*time.Millisecond, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 15*time.Millisecond {
		t.Fatalf("At event ran at %v, want 15ms", at)
	}
}

func TestStepAndCounters(t *testing.T) {
	e := NewEngine()
	e.After(time.Millisecond, func() {})
	e.After(2*time.Millisecond, func() {})
	if !e.Step() {
		t.Fatal("Step with pending events returned false")
	}
	if e.Events() != 1 {
		t.Fatalf("Events = %d, want 1", e.Events())
	}
	if !e.Step() {
		t.Fatal("second Step returned false")
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			d := time.Duration(i%7) * time.Millisecond
			e.After(d, func() { order = append(order, i) })
		}
		e.RunAll()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two identical runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
