package sim

import (
	"sync"
	"time"
)

// runSharded advances the sharded engine toward until, executing at least
// min(max, everything due) events, in lockstep lookahead windows:
//
//  1. Global phase: with every shard parked at the barrier time T, drain
//     the global queue of events at T (harness callbacks, deferred
//     globals). Global events run on the coordinator goroutine and may
//     freely mutate shared state and schedule into any shard.
//  2. Pick the window bound B = min(T+window, next global event, just past
//     until). Every shard then executes its events with time < B — in
//     parallel, one goroutine per shard. Cross-shard deliveries produced
//     inside the window land at ≥ T+window ≥ B (the lookahead guarantee),
//     so no shard can affect another within the window; they are buffered
//     in per-shard outboxes.
//  3. Barrier: merge the outboxes into the destination heaps and the
//     deferred globals into the global queue, advance every clock to the
//     new T, repeat.
//
// Each event carries the canonical key (time, domain, per-domain seq);
// every heap pops its slice of that one total order, which is what makes
// the outcome identical for every shard count — see DESIGN.md.
//
// The return value is the number of events executed; 0 means the advance
// to until was already complete. The event budget max is checked at window
// granularity, so a call may overshoot it by one window's events.
func (e *Engine) runSharded(until time.Duration, max uint64) uint64 {
	var executed uint64
	for {
		// Global phase at T = e.now.
		for e.gq.len() > 0 && e.gq.top().at <= e.now {
			ev := e.gq.pop()
			e.gevents++
			executed++
			ev.fn()
		}
		nextG := time.Duration(1<<63 - 1)
		if e.gq.len() > 0 {
			nextG = e.gq.top().at
		}
		if e.idleUpTo(until) && nextG > until {
			e.advanceTo(until)
			return executed
		}
		if executed >= max {
			return executed
		}
		// Fast-forward across empty stretches: nothing anywhere is due
		// before earliest, so hop the barrier straight there instead of
		// walking empty windows one lookahead at a time.
		earliest := nextG
		for _, sh := range e.shards {
			if sh.q.len() > 0 && sh.q.top().at < earliest {
				earliest = sh.q.top().at
			}
		}
		if earliest > e.now {
			e.advanceTo(earliest)
			continue
		}
		bound := e.now + e.window
		if nextG < bound {
			bound = nextG
		}
		final := false
		if until+1 <= bound {
			// The last window is [T, until]: events exactly at until still
			// run (Run's contract), and nothing they produce can land at
			// ≤ until — cross-shard and deferred events carry at least the
			// lookahead, self-timers run within the window itself.
			bound = until + 1
			final = true
		}
		executed += e.runWindow(bound)
		e.mergeOutboxes()
		if final {
			e.advanceTo(until)
			return executed
		}
		e.advanceTo(bound)
	}
}

// idleUpTo reports whether no shard has an event due at or before until.
func (e *Engine) idleUpTo(until time.Duration) bool {
	for _, sh := range e.shards {
		if sh.q.len() > 0 && sh.q.top().at <= until {
			return false
		}
	}
	return true
}

// advanceTo moves the global clock and every shard clock to t (never
// backwards: a shard that executed events inside the final window sits at
// its last event time, at most t).
func (e *Engine) advanceTo(t time.Duration) {
	if e.now < t {
		e.now = t
	}
	for _, sh := range e.shards {
		if sh.now < t {
			sh.now = t
		}
	}
}

// runWindow executes every shard's events with time < bound and returns
// how many ran. With more than one shard the shards run on their own
// goroutines; the WaitGroup gives the coordinator a happens-before edge
// over all shard state.
func (e *Engine) runWindow(bound time.Duration) uint64 {
	var before uint64
	for _, sh := range e.shards {
		before += sh.events
	}
	e.inWindow = true
	if len(e.shards) == 1 {
		e.shards[0].runTo(bound)
	} else {
		var wg sync.WaitGroup
		for _, sh := range e.shards {
			if sh.q.len() == 0 || sh.q.top().at >= bound {
				continue
			}
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				sh.runTo(bound)
			}(sh)
		}
		wg.Wait()
	}
	e.inWindow = false
	var after uint64
	for _, sh := range e.shards {
		after += sh.events
	}
	return after - before
}

// runTo executes the shard's events with time strictly below bound.
func (sh *shard) runTo(bound time.Duration) {
	for sh.q.len() > 0 {
		top := sh.q.top()
		if top.at >= bound {
			break
		}
		sh.q.pop()
		sh.now = top.at
		sh.events++
		sh.exec(top)
	}
}

// mergeOutboxes folds every shard's cross-shard and deferred-global events
// into their destination queues. Push order is irrelevant: keys are unique
// and the heaps order by them.
func (e *Engine) mergeOutboxes() {
	for _, sh := range e.shards {
		for d, lst := range sh.out {
			if len(lst) == 0 {
				continue
			}
			dst := &e.shards[d].q
			for i, ev := range lst {
				dst.push(ev)
				lst[i] = nil
			}
			sh.out[d] = lst[:0]
		}
		if len(sh.outG) > 0 {
			for i, ev := range sh.outG {
				e.gq.push(ev)
				sh.outG[i] = nil
			}
			sh.outG = sh.outG[:0]
		}
	}
}
