package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// The sharded tests drive a toy flooding protocol through the engine's
// delivery path: every node logs what it sees (receipts, timers, deferred
// globals), and the concatenated logs form a fingerprint that must be
// byte-identical for every shard count — the engine's core contract.

const twin = 2 * time.Millisecond // lookahead window of the toy workload

type toyNet struct {
	e       *Engine
	nodes   []*toyNode
	globals []string // appended only in the global phase (single-threaded)
}

type toyNode struct {
	net   *toyNet
	id    int32
	ctx   Context
	log   []string
	state uint64
}

// Deliver is the toy protocol: log the receipt, fold it into node state,
// forward the hop-decremented payload to two pseudo-random targets, and
// occasionally arm a self-timer or defer a global action. It runs on the
// destination shard's goroutine; everything it touches is owned by node
// `to` except the engine's own scheduling entry points.
func (t *toyNet) Deliver(from, to int32, payload any, size int32) {
	n := t.nodes[to]
	hop := payload.(int)
	n.log = append(n.log, fmt.Sprintf("n%d recv hop=%d from=%d at=%v", to, hop, from, n.ctx.Now()))
	n.state = n.state*31 + uint64(from)*7 + uint64(hop)
	if hop == 0 {
		return
	}
	for k := 0; k < 2; k++ {
		tgt := (int(to)*5 + hop*13 + k*3) % len(t.nodes)
		d := twin + time.Duration(n.state%5)*time.Millisecond
		t.e.Deliver(to, int32(tgt), d, t, hop-1, size)
	}
	if n.state%3 == 0 {
		n.ctx.After(time.Duration(n.state%2)*time.Millisecond, func() {
			n.log = append(n.log, fmt.Sprintf("n%d timer at=%v", n.id, n.ctx.Now()))
		})
	}
	if n.state%7 == 0 {
		id := n.id
		t.e.DeferGlobal(int(id), func() {
			t.globals = append(t.globals, fmt.Sprintf("global from=%d at=%v", id, t.e.Now()))
		})
	}
}

func runToy(s int, drive func(e *Engine)) *toyNet {
	e := NewSharded(s, twin)
	t := &toyNet{e: e}
	const nodes = 24
	for i := 0; i < nodes; i++ {
		t.nodes = append(t.nodes, &toyNode{net: t, id: int32(i), ctx: e.Domain(i)})
	}
	for i := 0; i < nodes; i += 3 {
		e.Deliver(int32(i), int32((i+1)%nodes), twin+time.Duration(i%4)*time.Millisecond, t, 6, 64)
	}
	drive(e)
	return t
}

func (t *toyNet) fingerprint() string {
	var sb strings.Builder
	for _, n := range t.nodes {
		for _, l := range n.log {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	for _, g := range t.globals {
		sb.WriteString(g)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestShardedInvariance(t *testing.T) {
	runAll := func(e *Engine) { e.RunAll() }
	ref := runToy(1, runAll)
	if len(ref.fingerprint()) == 0 {
		t.Fatal("toy workload produced no events")
	}
	for _, s := range []int{2, 3, 8, 24, 31} {
		got := runToy(s, runAll)
		if got.fingerprint() != ref.fingerprint() {
			t.Fatalf("S=%d diverged from S=1:\n--- S=1 ---\n%s--- S=%d ---\n%s",
				s, ref.fingerprint(), s, got.fingerprint())
		}
		if got.e.Events() != ref.e.Events() {
			t.Fatalf("S=%d executed %d events, S=1 executed %d", s, got.e.Events(), ref.e.Events())
		}
	}
}

// RunChunk with a small event budget must land on the same outcome and
// final clock as one uninterrupted run — the cancellation seam the runtime
// backend depends on.
func TestShardedRunChunkEquivalence(t *testing.T) {
	const until = 200 * time.Millisecond
	ref := runToy(3, func(e *Engine) { e.Run(until) })
	got := runToy(3, func(e *Engine) {
		for e.RunChunk(until, 16) > 0 {
		}
	})
	if got.fingerprint() != ref.fingerprint() {
		t.Fatalf("chunked run diverged:\n--- Run ---\n%s--- RunChunk ---\n%s",
			ref.fingerprint(), got.fingerprint())
	}
	if got.e.Now() != ref.e.Now() {
		t.Fatalf("chunked run clock = %v, uninterrupted = %v", got.e.Now(), ref.e.Now())
	}
	if n := got.e.RunChunk(until, 16); n != 0 {
		t.Fatalf("RunChunk after completion executed %d events, want 0", n)
	}
}

// Run(until) executes events at ≤ until (inclusive boundary), leaves later
// events queued, and parks every clock exactly at until — matching the
// serial engine's contract.
func TestShardedRunUntilBoundary(t *testing.T) {
	e := NewSharded(2, twin)
	ran := map[int]bool{}
	for _, ms := range []int{10, 20, 30} {
		ms := ms
		e.After(time.Duration(ms)*time.Millisecond, func() { ran[ms] = true })
	}
	e.Run(20 * time.Millisecond)
	if !ran[10] || !ran[20] || ran[30] {
		t.Fatalf("boundary events wrong: ran=%v", ran)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run(time.Second)
	if !ran[30] {
		t.Fatal("resumed run did not execute the remaining event")
	}
}

// Global (harness) events run before any node event of the same instant,
// regardless of which shard the node lives on — a shard-count-independent
// rule the cluster's period ticks rely on.
func TestShardedGlobalBeforeNodeAtSameInstant(t *testing.T) {
	for _, s := range []int{1, 2} {
		e := NewSharded(s, twin)
		var order []string
		d := e.Domain(1)
		d.After(10*time.Millisecond, func() { order = append(order, "node") })
		e.After(10*time.Millisecond, func() { order = append(order, "global") })
		e.RunAll()
		if len(order) != 2 || order[0] != "global" || order[1] != "node" {
			t.Fatalf("S=%d order = %v, want [global node]", s, order)
		}
	}
}

// DeferGlobal from a node callback runs in the global phase one lookahead
// later; from the global phase it runs at the current instant. Same-instant
// ordering puts deferred globals (keyed by their node's domain) before
// harness After callbacks: a follow-up the first deferred action of a burst
// schedules with After(0) must see the whole burst applied.
func TestDeferGlobal(t *testing.T) {
	e := NewSharded(2, twin)
	var order []string
	d := e.Domain(0)
	d.After(10*time.Millisecond, func() {
		e.DeferGlobal(0, func() {
			order = append(order, fmt.Sprintf("deferred at=%v", e.Now()))
		})
	})
	e.RunAll()
	if len(order) != 1 || order[0] != "deferred at=12ms" {
		t.Fatalf("in-window DeferGlobal = %v, want [deferred at=12ms]", order)
	}

	order = nil
	e.After(0, func() { order = append(order, "harness") })
	e.DeferGlobal(0, func() { order = append(order, "deferred") })
	e.RunAll()
	if len(order) != 2 || order[0] != "deferred" || order[1] != "harness" {
		t.Fatalf("global-phase DeferGlobal = %v, want [deferred harness]", order)
	}
}

// After from inside a node callback panics under a sharded engine: harness
// scheduling with a global sequence would make event order depend on the
// shard layout.
func TestShardedAfterPanicsInWindow(t *testing.T) {
	e := NewSharded(1, twin)
	var panicked bool
	d := e.Domain(0)
	d.After(time.Millisecond, func() {
		defer func() { panicked = recover() != nil }()
		e.After(time.Millisecond, func() {})
	})
	e.RunAll()
	if !panicked {
		t.Fatal("After inside a node callback did not panic")
	}
}

// A cross-shard delivery below the lookahead window panics: the destination
// shard may already have advanced past the delivery time.
func TestShardedCrossShardMinDelayPanics(t *testing.T) {
	e := NewSharded(2, twin)
	sink := &countSink{}
	var panicked bool
	d := e.Domain(0)
	d.After(time.Millisecond, func() {
		defer func() { panicked = recover() != nil }()
		e.Deliver(0, 1, twin/2, sink, nil, 0) // node 1 lives on the other shard
	})
	e.RunAll()
	if !panicked {
		t.Fatal("sub-window cross-shard delivery did not panic")
	}
}

// Same-shard deliveries carry no lookahead constraint.
func TestShardedSameShardShortDelay(t *testing.T) {
	e := NewSharded(2, twin)
	sink := &countSink{}
	d := e.Domain(0)
	d.After(time.Millisecond, func() {
		e.Deliver(0, 2, 0, sink, nil, 0) // node 2 shares shard 0
	})
	e.RunAll()
	if sink.n != 1 {
		t.Fatalf("same-shard zero-delay delivery count = %d, want 1", sink.n)
	}
}

type countSink struct{ n int }

func (c *countSink) Deliver(from, to int32, payload any, size int32) { c.n++ }

// BenchmarkEngineDrain measures the serial scheduling hot path: pooled
// event, heap push/pop, callback dispatch. ns/op is ns/event.
func BenchmarkEngineDrain(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(0, tick)
	e.RunAll()
}

// BenchmarkEngineSharded measures the sharded delivery path end to end —
// pooled events through a Sink, window barriers, outbox merges — with a
// constant population of in-flight messages ring-forwarded across 64 nodes.
// ns/op is ns/event (the run is capped at b.N events, ±one window).
func BenchmarkEngineSharded(b *testing.B) {
	for _, s := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			e := NewSharded(s, twin)
			const nodes = 64
			sink := &ringSink{e: e, nodes: nodes}
			for i := 0; i < nodes; i++ {
				e.Domain(i)
			}
			for i := 0; i < nodes; i++ {
				e.Deliver(int32(i), int32((i+1)%nodes), twin, sink, nil, 64)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var total uint64
			for total < uint64(b.N) {
				total += e.RunChunk(time.Duration(1<<62), uint64(b.N)-total)
			}
		})
	}
}

// ringSink forwards every delivery one node ahead at exactly the lookahead
// window, keeping the in-flight population constant.
type ringSink struct {
	e     *Engine
	nodes int32
}

func (r *ringSink) Deliver(from, to int32, payload any, size int32) {
	r.e.Deliver(to, (to+1)%r.nodes, twin, r.e.sinkOf(r), payload, size)
}

// sinkOf exists only to keep the benchmark's Deliver call shaped like the
// production one (interface value already in hand, no per-call conversion).
func (e *Engine) sinkOf(s Sink) Sink { return s }
