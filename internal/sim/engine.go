// Package sim implements a deterministic discrete-event simulation engine
// with a virtual clock. The gossip and LiFTinG protocol logic is written
// against the small Context interface so the same node code runs both under
// this engine (for large-scale Monte-Carlo runs, §6 of the paper) and under
// the goroutine-based live runtime in internal/live (for integration
// realism, §7).
//
// The engine has two modes:
//
//   - Serial (NewEngine): one event heap, one virtual clock, events totally
//     ordered by (time, scheduling sequence). This is the legacy mode and
//     its event order is bit-for-bit what it always was.
//   - Sharded (NewSharded): nodes are partitioned across S shards, each
//     with its own heap and clock, advancing in lockstep lookahead windows
//     with a deterministic cross-shard merge. Events are ordered by the
//     shard-count-independent key (time, scheduling domain, per-domain
//     sequence), so results are byte-identical for every S ≥ 1 — see
//     DESIGN.md, "Sharded discrete-event engine".
//
// Both modes pool event structs and use a hand-rolled binary heap, so the
// steady-state scheduling path — including message delivery through a Sink
// — performs no allocation.
package sim

import (
	"fmt"
	"time"
)

// Context is the execution environment a protocol node sees: a virtual (or
// real) clock plus one-shot timers. Implementations guarantee that all
// callbacks for one node are serialized.
type Context interface {
	// Now returns the current virtual time, measured from the start of the
	// run.
	Now() time.Duration
	// After schedules fn to run once, d from now. d < 0 is treated as 0.
	After(d time.Duration, fn func())
}

// Sink receives a simulated message delivery. It exists so network
// implementations can schedule deliveries without allocating a closure per
// message: the engine stores the four delivery operands in the pooled event
// and calls Deliver when the event fires.
type Sink interface {
	// Deliver hands the payload scheduled from node `from` to node `to`.
	// Under a sharded engine it runs on the goroutine of to's shard.
	Deliver(from, to int32, payload any, size int32)
}

// globalDomain is the ordering domain of harness events (After) on a
// sharded engine. Global events always run before node events at the same
// instant — the global queue drains to the barrier before a window starts —
// so the domain only orders events *within* the global queue: harness
// callbacks sort after same-instant deferred globals (which carry their
// scheduling node's domain). That mirrors the serial engine's FIFO — a
// follow-up scheduled with After(0) by the first deferred action of a
// burst runs once the whole burst has drained, letting it coalesce the
// burst (manager rebalances after an expulsion wave rely on this).
const globalDomain int32 = 1<<31 - 1

// event is one scheduled occurrence. fn != nil marks a callback event;
// otherwise it is a delivery through sink. Events are pooled: exec copies
// the fields out and releases the struct before invoking the callback.
type event struct {
	at  time.Duration
	seq uint64
	dom int32 // ordering domain: node id, or globalDomain

	fn      func()
	sink    Sink
	payload any
	from    int32
	to      int32
	size    int32
}

// less is the canonical event order: time, then domain, then per-domain
// sequence. In serial mode every event carries dom 0 and a single global
// sequence, which reduces to the legacy (time, scheduling order) rule.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.dom != b.dom {
		return a.dom < b.dom
	}
	return a.seq < b.seq
}

// eheap is a hand-rolled binary min-heap of events. container/heap costs an
// interface call per comparison and an allocation per Push on the hot path;
// at tens of millions of events both show up in profiles.
type eheap struct {
	h []*event
}

func (q *eheap) len() int { return len(q.h) }

func (q *eheap) top() *event { return q.h[0] }

func (q *eheap) push(ev *event) {
	h := append(q.h, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	q.h = h
}

func (q *eheap) pop() *event {
	h := q.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && less(h[r], h[l]) {
			c = r
		}
		if !less(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	q.h = h
	return top
}

// shard is one partition of the sharded engine: a heap, a clock, an event
// pool and the outboxes for cross-shard and deferred-global traffic. The
// serial engine uses a single shard through the same code paths. During a
// window a shard is owned exclusively by one goroutine; between windows the
// coordinator owns all of them.
type shard struct {
	now    time.Duration
	q      eheap
	pool   []*event
	events uint64
	// out buffers events destined for other shards during a window; the
	// coordinator merges them at the barrier. out[own index] is unused
	// (same-shard events are pushed directly).
	out [][]*event
	// outG buffers deferred-global events scheduled from this shard's
	// node callbacks during a window.
	outG []*event
}

func (sh *shard) alloc() *event {
	if n := len(sh.pool); n > 0 {
		ev := sh.pool[n-1]
		sh.pool[n-1] = nil
		sh.pool = sh.pool[:n-1]
		return ev
	}
	return &event{}
}

// release zeroes the event's reference fields (so the pool retains neither
// closures nor payloads) and returns it to the pool.
func (sh *shard) release(ev *event) {
	*ev = event{}
	sh.pool = append(sh.pool, ev)
}

// exec runs one event on behalf of shard sh, releasing the event struct
// back to sh's pool before invoking the callback (so the callback can
// schedule into a warm pool).
func (sh *shard) exec(ev *event) {
	if ev.fn != nil {
		fn := ev.fn
		sh.release(ev)
		fn()
		return
	}
	sink, from, to, payload, size := ev.sink, ev.from, ev.to, ev.payload, ev.size
	sh.release(ev)
	sink.Deliver(from, to, payload, size)
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// usable; create one with NewEngine (serial) or NewSharded. A serial engine
// runs entirely on the caller's goroutine. A sharded engine runs node
// events on shard goroutines during lookahead windows; everything outside
// Run — setup, harness callbacks, global events — still happens on the
// caller's goroutine.
type Engine struct {
	// serial mode state (also the single shard's identity in serial mode).
	s   shard
	seq uint64

	// sharded mode state; shards == nil means serial.
	shards  []*shard
	window  time.Duration
	now     time.Duration // global clock T: the current window's start
	gq      eheap         // global events: harness callbacks and deferred globals
	gseq    uint64
	gevents uint64
	nodeSeq []uint64
	domains []*Domain
	// inWindow is true while shard goroutines execute a window. It is
	// written by the coordinator with a happens-before edge to the workers
	// (the window dispatch), so they may read it without synchronization.
	inWindow bool
}

// NewEngine returns a serial engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// NewSharded returns an engine that partitions nodes across s shards
// (node → shard id%s) and advances them in lockstep windows of the given
// lookahead. The lookahead must be a lower bound on every cross-node
// delivery delay (Deliver panics on a violation); window must be > 0 and
// s ≥ 1. Results are byte-identical for every shard count, including 1.
func NewSharded(s int, window time.Duration) *Engine {
	if s < 1 {
		panic("sim: NewSharded needs at least one shard")
	}
	if window <= 0 {
		panic("sim: NewSharded needs a positive lookahead window")
	}
	e := &Engine{window: window, shards: make([]*shard, s)}
	for i := range e.shards {
		sh := &shard{out: make([][]*event, s)}
		e.shards[i] = sh
	}
	return e
}

var _ Context = (*Engine)(nil)

// Sharded reports whether the engine runs in sharded mode.
func (e *Engine) Sharded() bool { return e.shards != nil }

// ShardCount returns the number of shards (0 for a serial engine).
func (e *Engine) ShardCount() int { return len(e.shards) }

// Window returns the lookahead window (0 for a serial engine).
func (e *Engine) Window() time.Duration { return e.window }

// InWindow reports whether a sharded window is currently executing — i.e.
// whether the caller is running inside a node callback on a shard
// goroutine. Harness code uses it to decide between acting immediately
// (global phase) and deferring through DeferGlobal.
func (e *Engine) InWindow() bool { return e.inWindow }

// Now returns the current virtual time: the serial clock, or the current
// window's start under a sharded engine (node callbacks should use their
// Domain's clock, which tracks event time within the window).
func (e *Engine) Now() time.Duration {
	if e.shards == nil {
		return e.s.now
	}
	return e.now
}

// After schedules fn at Now()+d. Events scheduled for the same instant run
// in scheduling order (FIFO), which keeps runs reproducible.
//
// Under a sharded engine this schedules a global (harness) event: it runs
// in the global phase between windows, before any node event of the same
// instant, and must itself be called from the global phase — calling it
// from a node callback panics, because a per-node scheduling order would
// depend on the shard layout. Node callbacks schedule through their own
// Context (or DeferGlobal for harness work).
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if e.shards == nil {
		e.seq++
		ev := e.s.alloc()
		ev.at, ev.seq, ev.fn = e.s.now+d, e.seq, fn
		e.s.q.push(ev)
		return
	}
	if e.inWindow {
		panic("sim: After called from a node callback under a sharded engine; use the node Context or DeferGlobal")
	}
	e.gseq++
	e.gq.push(&event{at: e.now + d, dom: globalDomain, seq: e.gseq, fn: fn})
}

// At schedules fn at absolute virtual time t. Times in the past run
// immediately (at the current time).
func (e *Engine) At(t time.Duration, fn func()) {
	e.After(t-e.Now(), fn)
}

// Domain returns the scheduling context of node id. Under a serial engine
// every node shares the engine's single clock and queue; under a sharded
// engine each node gets a context bound to its shard, with the per-domain
// sequence that makes the event order shard-count-independent.
//
// Growing the domain table (first call for a given id) must happen outside
// a running window — node construction is global-phase work.
func (e *Engine) Domain(id int) Context {
	if e.shards == nil {
		return e
	}
	if id < 0 {
		panic("sim: negative node id")
	}
	e.ensureNode(id)
	return e.domains[id]
}

func (e *Engine) ensureNode(id int) {
	if id < len(e.domains) && e.domains[id] != nil {
		return
	}
	if e.inWindow {
		panic("sim: node domains must be created in the global phase, not from a node callback")
	}
	for len(e.domains) <= id {
		e.domains = append(e.domains, nil)
		e.nodeSeq = append(e.nodeSeq, 0)
	}
	if e.domains[id] == nil {
		e.domains[id] = &Domain{e: e, id: int32(id), sh: e.shards[id%len(e.shards)]}
	}
}

// NodeNow returns node id's current clock: its shard's event time during a
// window, the global clock otherwise. Serial engines have one clock.
func (e *Engine) NodeNow(id int) time.Duration {
	if e.shards == nil {
		return e.s.now
	}
	return e.shards[id%len(e.shards)].now
}

// Deliver schedules a message delivery from node `from` to node `to`, d
// from from's current clock, through sink. This is the allocation-free
// delivery path: the operands ride in a pooled event, no closure is built.
// In serial mode the delivery occupies exactly the position in the event
// order that After would have given it.
//
// Under a sharded engine the delivery is keyed by (time, from, from's send
// sequence) — a shard-count-independent order — and a cross-shard delivery
// with d < the lookahead window panics: the destination shard may already
// have advanced past it.
func (e *Engine) Deliver(from, to int32, d time.Duration, sink Sink, payload any, size int32) {
	if d < 0 {
		d = 0
	}
	if e.shards == nil {
		e.seq++
		ev := e.s.alloc()
		ev.at, ev.seq = e.s.now+d, e.seq
		ev.sink, ev.payload, ev.from, ev.to, ev.size = sink, payload, from, to, size
		e.s.q.push(ev)
		return
	}
	s := len(e.shards)
	src := e.shards[int(from)%s]
	dst := int(to) % s
	ev := src.alloc()
	ev.at, ev.dom, ev.seq = src.now+d, from, e.nodeSeq[from]
	e.nodeSeq[from]++
	ev.sink, ev.payload, ev.from, ev.to, ev.size = sink, payload, from, to, size
	if dst == int(from)%s {
		src.q.push(ev)
		return
	}
	if e.inWindow {
		if d < e.window {
			panic(fmt.Sprintf("sim: cross-shard delivery %d→%d with delay %v below the %v lookahead window", from, to, d, e.window))
		}
		src.out[dst] = append(src.out[dst], ev)
		return
	}
	// Global phase: every shard is parked at the barrier, push directly.
	e.shards[dst].q.push(ev)
}

// DeferGlobal schedules fn as a global-phase event one lookahead window
// from node `from`'s current clock. It is the bridge from node callbacks to
// harness work that must mutate global state (expulsions, membership): the
// event is keyed by (time, from, from's sequence), so the order in which
// deferred actions run is shard-count-independent. Calling it from the
// global phase runs through the global queue at the current instant,
// preserving the serial engine's "immediate" semantics in event order.
func (e *Engine) DeferGlobal(from int, fn func()) {
	if e.shards == nil {
		panic("sim: DeferGlobal requires a sharded engine")
	}
	sh := e.shards[from%len(e.shards)]
	ev := &event{at: sh.now + e.window, dom: int32(from), seq: e.nodeSeq[from], fn: fn}
	e.nodeSeq[from]++
	if e.inWindow {
		sh.outG = append(sh.outG, ev)
		return
	}
	ev.at = sh.now // global phase: run at the current instant, in queue order
	e.gq.push(ev)
}

// Step runs the next pending event and reports whether one existed. Serial
// engines only: a sharded engine has no single "next" event.
func (e *Engine) Step() bool {
	if e.shards != nil {
		panic("sim: Step requires a serial engine")
	}
	if e.s.q.len() == 0 {
		return false
	}
	ev := e.s.q.pop()
	e.s.now = ev.at
	e.s.events++
	e.s.exec(ev)
	return true
}

// Run executes events until the queue is empty or the clock would pass
// until. It returns the number of events executed. Events scheduled exactly
// at until still run.
func (e *Engine) Run(until time.Duration) uint64 {
	if e.shards != nil {
		return e.runSharded(until, ^uint64(0))
	}
	start := e.s.events
	for e.s.q.len() > 0 {
		if e.s.q.top().at > until {
			break
		}
		e.Step()
	}
	if e.s.now < until {
		e.s.now = until
	}
	return e.s.events - start
}

// RunChunk executes events up to until in a bounded burst and returns the
// number executed, so callers can interleave event bursts with cancellation
// checks and still end on the same clock as one uninterrupted Run. A return
// of 0 means the advance to until is complete. The serial engine executes
// at most max events per call; the sharded engine executes whole lookahead
// windows and may overshoot max by the events of one window.
func (e *Engine) RunChunk(until time.Duration, max uint64) uint64 {
	if e.shards != nil {
		return e.runSharded(until, max)
	}
	start := e.s.events
	for e.s.q.len() > 0 && e.s.events-start < max {
		if e.s.q.top().at > until {
			break
		}
		e.Step()
	}
	if (e.s.q.len() == 0 || e.s.q.top().at > until) && e.s.now < until {
		e.s.now = until
	}
	return e.s.events - start
}

// RunAll executes events until every queue is empty and returns the number
// of events executed. Use only for workloads that provably quiesce.
func (e *Engine) RunAll() uint64 {
	if e.shards != nil {
		var total uint64
		for {
			n := e.runSharded(e.now+1000*e.window, ^uint64(0))
			total += n
			if n == 0 && e.Pending() == 0 {
				return total
			}
		}
	}
	start := e.s.events
	for e.Step() {
	}
	return e.s.events - start
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int {
	if e.shards == nil {
		return e.s.q.len()
	}
	n := e.gq.len()
	for _, sh := range e.shards {
		n += sh.q.len()
	}
	return n
}

// Events returns the total number of events executed so far.
func (e *Engine) Events() uint64 {
	if e.shards == nil {
		return e.s.events
	}
	n := e.gevents
	for _, sh := range e.shards {
		n += sh.events
	}
	return n
}

// Domain is a node's scheduling context under a sharded engine: the shard
// clock plus timers keyed by the node's own sequence. All of a node's
// callbacks run serialized on its shard, so a Domain may only be used from
// its own node's callbacks or from the global phase.
type Domain struct {
	e  *Engine
	id int32
	sh *shard
}

var _ Context = (*Domain)(nil)

// Now returns the node's current virtual time: its shard's event time
// during a window, the window-start time in the global phase.
func (d *Domain) Now() time.Duration { return d.sh.now }

// After schedules fn on this node, d from now. Self-timers have no
// lookahead constraint — they stay on the node's own shard.
func (d *Domain) After(dur time.Duration, fn func()) {
	if dur < 0 {
		dur = 0
	}
	e := d.e
	ev := d.sh.alloc()
	ev.at, ev.dom, ev.seq, ev.fn = d.sh.now+dur, d.id, e.nodeSeq[d.id], fn
	e.nodeSeq[d.id]++
	d.sh.q.push(ev)
}
