// Package sim implements a deterministic discrete-event simulation engine
// with a virtual clock. The gossip and LiFTinG protocol logic is written
// against the small Context interface so the same node code runs both under
// this engine (for large-scale Monte-Carlo runs, §6 of the paper) and under
// the goroutine-based live runtime in internal/live (for integration
// realism, §7).
package sim

import (
	"container/heap"
	"time"
)

// Context is the execution environment a protocol node sees: a virtual (or
// real) clock plus one-shot timers. Implementations guarantee that all
// callbacks for one node are serialized.
type Context interface {
	// Now returns the current virtual time, measured from the start of the
	// run.
	Now() time.Duration
	// After schedules fn to run once, d from now. d < 0 is treated as 0.
	After(d time.Duration, fn func())
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// usable; create one with NewEngine. Engine is not safe for concurrent use:
// the whole simulation runs on the caller's goroutine.
type Engine struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	events uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

var _ Context = (*Engine)(nil)

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// After schedules fn at Now()+d. Events scheduled for the same instant run
// in scheduling order (FIFO), which keeps runs reproducible.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + d, seq: e.seq, fn: fn})
}

// At schedules fn at absolute virtual time t. Times in the past run
// immediately (at the current time).
func (e *Engine) At(t time.Duration, fn func()) {
	e.After(t-e.now, fn)
}

// Step runs the next pending event and reports whether one existed.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.events++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the clock would pass
// until. It returns the number of events executed. Events scheduled exactly
// at until still run.
func (e *Engine) Run(until time.Duration) uint64 {
	start := e.events
	for e.queue.Len() > 0 {
		next := e.queue[0].at
		if next > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return e.events - start
}

// RunChunk executes at most max events up to until and returns the number
// executed. It advances the clock to until only once the queue is drained of
// events at or before that instant, so callers can interleave bounded event
// bursts with cancellation checks and still end on the same clock as one
// uninterrupted Run.
func (e *Engine) RunChunk(until time.Duration, max uint64) uint64 {
	start := e.events
	for e.queue.Len() > 0 && e.events-start < max {
		if e.queue[0].at > until {
			break
		}
		e.Step()
	}
	if (e.queue.Len() == 0 || e.queue[0].at > until) && e.now < until {
		e.now = until
	}
	return e.events - start
}

// RunAll executes events until the queue is empty and returns the number of
// events executed. Use only for workloads that provably quiesce.
func (e *Engine) RunAll() uint64 {
	start := e.events
	for e.Step() {
	}
	return e.events - start
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Events returns the total number of events executed so far.
func (e *Engine) Events() uint64 { return e.events }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
