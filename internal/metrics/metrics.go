// Package metrics collects message and byte counters for the dissemination
// protocol and LiFTinG's verifications. It feeds the overhead accounting of
// Table 3 (message counts) and Table 5 (bandwidth overhead) of the paper.
package metrics

import (
	"sync"

	"lifting/internal/msg"
)

// PerNode aggregates traffic for a single node.
type PerNode struct {
	SentMsgs  uint64
	SentBytes uint64
	RecvMsgs  uint64
	RecvBytes uint64
}

// Collector accumulates global and per-node traffic statistics. It is safe
// for concurrent use (the live runtime delivers from many goroutines); under
// the single-threaded simulator the lock is uncontended.
//
// The zero value is not usable; create one with NewCollector.
type Collector struct {
	mu        sync.Mutex
	sentMsgs  map[msg.Kind]uint64
	sentBytes map[msg.Kind]uint64
	dropped   map[msg.Kind]uint64
	perNode   map[msg.NodeID]*PerNode
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		sentMsgs:  make(map[msg.Kind]uint64),
		sentBytes: make(map[msg.Kind]uint64),
		dropped:   make(map[msg.Kind]uint64),
		perNode:   make(map[msg.NodeID]*PerNode),
	}
}

// OnSend records that from sent m (size bytes on the wire).
func (c *Collector) OnSend(from msg.NodeID, m msg.Message, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sentMsgs[m.Kind()]++
	c.sentBytes[m.Kind()] += uint64(size)
	n := c.node(from)
	n.SentMsgs++
	n.SentBytes += uint64(size)
}

// OnDeliver records that to received m (size bytes on the wire).
func (c *Collector) OnDeliver(to msg.NodeID, m msg.Message, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.node(to)
	n.RecvMsgs++
	n.RecvBytes += uint64(size)
}

// OnDrop records that a message of the given kind was lost in transit.
func (c *Collector) OnDrop(m msg.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropped[m.Kind()]++
}

func (c *Collector) node(id msg.NodeID) *PerNode {
	n, ok := c.perNode[id]
	if !ok {
		n = &PerNode{}
		c.perNode[id] = n
	}
	return n
}

// SentMsgs returns the number of messages of the given kind sent.
func (c *Collector) SentMsgs(k msg.Kind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sentMsgs[k]
}

// SentBytes returns the number of bytes of the given kind sent.
func (c *Collector) SentBytes(k msg.Kind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sentBytes[k]
}

// Dropped returns the number of messages of the given kind lost in transit.
func (c *Collector) Dropped(k msg.Kind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped[k]
}

// Node returns a copy of the per-node counters for id.
func (c *Collector) Node(id msg.NodeID) PerNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.perNode[id]; ok {
		return *n
	}
	return PerNode{}
}

// Totals sums counters over every kind for which include returns true and
// reports (messages, bytes).
func (c *Collector) Totals(include func(msg.Kind) bool) (msgs, bytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, n := range c.sentMsgs {
		if include(k) {
			msgs += n
			bytes += c.sentBytes[k]
		}
	}
	return msgs, bytes
}

// VerificationTotals reports messages and bytes sent by LiFTinG
// verifications (everything except propose/request/serve).
func (c *Collector) VerificationTotals() (msgs, bytes uint64) {
	return c.Totals(func(k msg.Kind) bool { return k.IsVerification() })
}

// ProtocolTotals reports messages and bytes sent by the dissemination
// protocol itself (propose/request/serve).
func (c *Collector) ProtocolTotals() (msgs, bytes uint64) {
	return c.Totals(func(k msg.Kind) bool { return !k.IsVerification() })
}

// Overhead returns LiFTinG's relative bandwidth overhead: verification bytes
// divided by dissemination bytes (Table 5's metric). It returns 0 when no
// dissemination traffic was recorded.
func (c *Collector) Overhead() float64 {
	_, vb := c.VerificationTotals()
	_, pb := c.ProtocolTotals()
	if pb == 0 {
		return 0
	}
	return float64(vb) / float64(pb)
}
