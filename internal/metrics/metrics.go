// Package metrics collects message and byte counters for the dissemination
// protocol and LiFTinG's verifications. It feeds the overhead accounting of
// Table 3 (message counts) and Table 5 (bandwidth overhead) of the paper,
// the /metrics endpoint of lifting-node, and the deterministic metrics
// snapshots embedded in the lifting.experiments/v1 JSON document.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lifting/internal/msg"
)

// kindSlots is the size of the per-kind counter arrays: kinds run 1..14
// (KindPropose..KindAuditPollResp), slot 0 absorbs the zero Kind.
const kindSlots = int(msg.KindAuditPollResp) + 1

// numStripes spreads the per-kind counters across sender-id stripes so
// concurrent senders (live goroutines, UDP readers, engine shards) do not
// all contend on one cache line. Must be a power of two.
const numStripes = 8

// maxDense bounds the copy-on-write dense per-node slice. IDs at or above it
// (notably msg.NoNode = 0xFFFFFFFF) fall back to a mutex-guarded map so a
// stray huge ID cannot allocate gigabytes.
const maxDense = 1 << 22

// kindStripe holds one stripe of the global per-kind counters, padded to its
// own cache lines.
type kindStripe struct {
	sentMsgs  [kindSlots]atomic.Uint64
	sentBytes [kindSlots]atomic.Uint64
	recvMsgs  [kindSlots]atomic.Uint64
	recvBytes [kindSlots]atomic.Uint64
	dropMsgs  [kindSlots]atomic.Uint64
	dropBytes [kindSlots]atomic.Uint64
	_         [64]byte
}

// PerNode aggregates traffic for a single node.
type PerNode struct {
	SentMsgs      uint64
	SentBytes     uint64
	RecvMsgs      uint64
	RecvBytes     uint64
	DupChunks     uint64
	UsefulChunks  uint64
	GoodputBytes  uint64
	InvalidServes uint64
}

// nodeCounters is the live (atomic) form of PerNode.
type nodeCounters struct {
	sentMsgs      atomic.Uint64
	sentBytes     atomic.Uint64
	recvMsgs      atomic.Uint64
	recvBytes     atomic.Uint64
	dupChunks     atomic.Uint64
	usefulChunks  atomic.Uint64
	goodputBytes  atomic.Uint64
	invalidServes atomic.Uint64
}

func (n *nodeCounters) snapshot() PerNode {
	return PerNode{
		SentMsgs:      n.sentMsgs.Load(),
		SentBytes:     n.sentBytes.Load(),
		RecvMsgs:      n.recvMsgs.Load(),
		RecvBytes:     n.recvBytes.Load(),
		DupChunks:     n.dupChunks.Load(),
		UsefulChunks:  n.usefulChunks.Load(),
		GoodputBytes:  n.goodputBytes.Load(),
		InvalidServes: n.invalidServes.Load(),
	}
}

// Collector accumulates global and per-node traffic statistics. The record
// path (OnSend/OnDeliver/OnDrop/OnDuplicateChunk/OnUsefulChunk) is
// allocation-free and lock-free after a node's first message: per-kind
// counters are striped atomics indexed by sender, per-node counters live in
// a copy-on-write dense slice reached through an atomic pointer. Atomic adds
// commute, so cumulative counts read at a sharded-engine barrier are
// byte-identical regardless of shard or worker count.
//
// The zero value is not usable; create one with NewCollector.
type Collector struct {
	stripes [numStripes]kindStripe

	// nodes is the dense per-node table: an atomically published slice
	// indexed by NodeID. Readers load the pointer and index; growth and
	// slot installation happen under growMu, republishing a longer slice
	// that shares the existing *nodeCounters entries.
	nodes  atomic.Pointer[[]*nodeCounters]
	growMu sync.Mutex
	// sparse catches IDs >= maxDense (msg.NoNode in particular).
	sparse map[msg.NodeID]*nodeCounters

	// Redundancy accounting (gossip plane).
	dupChunks    atomic.Uint64
	usefulChunks atomic.Uint64

	// Content-plane QoE accounting: payload bytes of useful chunks
	// (goodput), hash-verification rejections, and stream lag / inter-arrival
	// jitter as integer-nanosecond totals plus sample counts, so means come
	// from exact integer division instead of float accumulation.
	goodputBytes  atomic.Uint64
	invalidServes atomic.Uint64
	lagTotalNs    atomic.Uint64
	lagSamples    atomic.Uint64
	jitterTotalNs atomic.Uint64
	jitterSamples atomic.Uint64

	// ServeLatency observes propose→serve latency: the time from a node
	// requesting a chunk to the serve arriving.
	ServeLatency *Histogram

	// Verification-plane instrumentation.
	blameMu      sync.Mutex
	blamesIssued map[string]*atomic.Uint64

	auditsResponded    atomic.Uint64
	auditsUnresponsive atomic.Uint64
	auditsPassed       atomic.Uint64
	auditsFailed       atomic.Uint64
	expulsions         atomic.Uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	c := &Collector{
		sparse:       make(map[msg.NodeID]*nodeCounters),
		blamesIssued: make(map[string]*atomic.Uint64),
		ServeLatency: NewHistogram(HistogramBuckets),
	}
	empty := make([]*nodeCounters, 0)
	c.nodes.Store(&empty)
	return c
}

func kindIndex(k msg.Kind) int {
	i := int(k)
	if i >= kindSlots {
		return 0
	}
	return i
}

func (c *Collector) stripe(id msg.NodeID) *kindStripe {
	return &c.stripes[uint32(id)&(numStripes-1)]
}

// node returns the counters for id, installing them on first sight. The fast
// path is one atomic pointer load plus a bounds check.
func (c *Collector) node(id msg.NodeID) *nodeCounters {
	if id < maxDense {
		tab := *c.nodes.Load()
		if int(id) < len(tab) {
			if n := tab[id]; n != nil {
				return n
			}
		}
	}
	return c.nodeSlow(id)
}

func (c *Collector) nodeSlow(id msg.NodeID) *nodeCounters {
	c.growMu.Lock()
	defer c.growMu.Unlock()
	if id >= maxDense {
		n, ok := c.sparse[id]
		if !ok {
			n = &nodeCounters{}
			c.sparse[id] = n
		}
		return n
	}
	tab := *c.nodes.Load()
	if int(id) < len(tab) && tab[id] != nil {
		return tab[id]
	}
	size := len(tab)
	if size == 0 {
		size = 64
	}
	for size <= int(id) {
		size *= 2
	}
	grown := make([]*nodeCounters, size)
	copy(grown, tab)
	n := &nodeCounters{}
	grown[id] = n
	c.nodes.Store(&grown)
	return n
}

// OnSend records that from sent m (size bytes on the wire).
func (c *Collector) OnSend(from msg.NodeID, m msg.Message, size int) {
	s := c.stripe(from)
	i := kindIndex(m.Kind())
	s.sentMsgs[i].Add(1)
	s.sentBytes[i].Add(uint64(size))
	n := c.node(from)
	n.sentMsgs.Add(1)
	n.sentBytes.Add(uint64(size))
}

// OnDeliver records that to received m (size bytes on the wire).
func (c *Collector) OnDeliver(to msg.NodeID, m msg.Message, size int) {
	s := c.stripe(to)
	i := kindIndex(m.Kind())
	s.recvMsgs[i].Add(1)
	s.recvBytes[i].Add(uint64(size))
	n := c.node(to)
	n.recvMsgs.Add(1)
	n.recvBytes.Add(uint64(size))
}

// OnDrop records that a message of the given kind (size bytes on the wire)
// was lost in transit.
func (c *Collector) OnDrop(m msg.Message, size int) {
	s := c.stripe(m.From())
	i := kindIndex(m.Kind())
	s.dropMsgs[i].Add(1)
	s.dropBytes[i].Add(uint64(size))
}

// OnDuplicateChunk records that node id received a serve for a chunk it
// already held — pure redundancy on the wire.
func (c *Collector) OnDuplicateChunk(id msg.NodeID) {
	c.dupChunks.Add(1)
	c.node(id).dupChunks.Add(1)
}

// OnUsefulChunk records that node id received a new chunk of payloadBytes
// payload, latency after requesting it (propose→serve latency). The payload
// bytes accumulate into goodput — the QoE numerator.
func (c *Collector) OnUsefulChunk(id msg.NodeID, latency time.Duration, payloadBytes int) {
	c.usefulChunks.Add(1)
	c.goodputBytes.Add(uint64(payloadBytes))
	n := c.node(id)
	n.usefulChunks.Add(1)
	n.goodputBytes.Add(uint64(payloadBytes))
	c.ServeLatency.Observe(latency)
}

// OnInvalidServe records that node id rejected a serve whose payload was
// missing or failed hash verification.
func (c *Collector) OnInvalidServe(id msg.NodeID) {
	c.invalidServes.Add(1)
	c.node(id).invalidServes.Add(1)
}

// OnStreamLag records one chunk's stream lag: arrival time minus the source's
// generation time. Negative lags (a chunk outracing its nominal schedule)
// clamp to zero.
func (c *Collector) OnStreamLag(lag time.Duration) {
	if lag < 0 {
		lag = 0
	}
	c.lagTotalNs.Add(uint64(lag))
	c.lagSamples.Add(1)
}

// OnJitter records one inter-arrival jitter sample: the absolute deviation of
// the gap between consecutive chunk arrivals from the nominal chunk interval.
func (c *Collector) OnJitter(dev time.Duration) {
	if dev < 0 {
		dev = -dev
	}
	c.jitterTotalNs.Add(uint64(dev))
	c.jitterSamples.Add(1)
}

// OnBlameIssued records a blame emitted locally, keyed by reason.
func (c *Collector) OnBlameIssued(reason string) {
	c.blameMu.Lock()
	ctr, ok := c.blamesIssued[reason]
	if !ok {
		ctr = &atomic.Uint64{}
		c.blamesIssued[reason] = ctr
	}
	c.blameMu.Unlock()
	ctr.Add(1)
}

// OnAuditOutcome records one completed audit: whether the target responded
// and whether its history passed (no expulsion recommended).
func (c *Collector) OnAuditOutcome(responded, passed bool) {
	if responded {
		c.auditsResponded.Add(1)
	} else {
		c.auditsUnresponsive.Add(1)
	}
	if passed {
		c.auditsPassed.Add(1)
	} else {
		c.auditsFailed.Add(1)
	}
}

// OnExpel records one expulsion decision.
func (c *Collector) OnExpel() { c.expulsions.Add(1) }

// sum folds one counter class over every stripe.
func (c *Collector) sum(pick func(*kindStripe) *[kindSlots]atomic.Uint64, k msg.Kind) uint64 {
	i := kindIndex(k)
	var total uint64
	for s := range c.stripes {
		total += pick(&c.stripes[s])[i].Load()
	}
	return total
}

// SentMsgs returns the number of messages of the given kind sent.
func (c *Collector) SentMsgs(k msg.Kind) uint64 {
	return c.sum(func(s *kindStripe) *[kindSlots]atomic.Uint64 { return &s.sentMsgs }, k)
}

// SentBytes returns the number of bytes of the given kind sent.
func (c *Collector) SentBytes(k msg.Kind) uint64 {
	return c.sum(func(s *kindStripe) *[kindSlots]atomic.Uint64 { return &s.sentBytes }, k)
}

// RecvMsgs returns the number of messages of the given kind delivered.
func (c *Collector) RecvMsgs(k msg.Kind) uint64 {
	return c.sum(func(s *kindStripe) *[kindSlots]atomic.Uint64 { return &s.recvMsgs }, k)
}

// RecvBytes returns the number of bytes of the given kind delivered.
func (c *Collector) RecvBytes(k msg.Kind) uint64 {
	return c.sum(func(s *kindStripe) *[kindSlots]atomic.Uint64 { return &s.recvBytes }, k)
}

// Dropped returns the number of messages of the given kind lost in transit.
func (c *Collector) Dropped(k msg.Kind) uint64 {
	return c.sum(func(s *kindStripe) *[kindSlots]atomic.Uint64 { return &s.dropMsgs }, k)
}

// DroppedBytes returns the number of bytes of the given kind lost in
// transit.
func (c *Collector) DroppedBytes(k msg.Kind) uint64 {
	return c.sum(func(s *kindStripe) *[kindSlots]atomic.Uint64 { return &s.dropBytes }, k)
}

// Node returns a copy of the per-node counters for id.
func (c *Collector) Node(id msg.NodeID) PerNode {
	if id < maxDense {
		tab := *c.nodes.Load()
		if int(id) < len(tab) && tab[id] != nil {
			return tab[id].snapshot()
		}
		return PerNode{}
	}
	c.growMu.Lock()
	n, ok := c.sparse[id]
	c.growMu.Unlock()
	if !ok {
		return PerNode{}
	}
	return n.snapshot()
}

// DupChunks returns the total number of duplicate chunks received.
func (c *Collector) DupChunks() uint64 { return c.dupChunks.Load() }

// UsefulChunks returns the total number of useful (first-copy) chunks
// received.
func (c *Collector) UsefulChunks() uint64 { return c.usefulChunks.Load() }

// GoodputBytes returns the total payload bytes of useful chunks delivered.
func (c *Collector) GoodputBytes() uint64 { return c.goodputBytes.Load() }

// InvalidServes returns the number of serves rejected by hash verification.
func (c *Collector) InvalidServes() uint64 { return c.invalidServes.Load() }

// StreamLagMeanNs returns the mean stream lag in nanoseconds (0 without
// samples). Integer division keeps it deterministic.
func (c *Collector) StreamLagMeanNs() uint64 {
	if n := c.lagSamples.Load(); n > 0 {
		return c.lagTotalNs.Load() / n
	}
	return 0
}

// StreamJitterMeanNs returns the mean inter-arrival jitter in nanoseconds (0
// without samples).
func (c *Collector) StreamJitterMeanNs() uint64 {
	if n := c.jitterSamples.Load(); n > 0 {
		return c.jitterTotalNs.Load() / n
	}
	return 0
}

// Expulsions returns the number of expulsion decisions recorded.
func (c *Collector) Expulsions() uint64 { return c.expulsions.Load() }

// BlamesIssued returns the locally issued blame counts keyed by reason.
func (c *Collector) BlamesIssued() map[string]uint64 {
	c.blameMu.Lock()
	defer c.blameMu.Unlock()
	out := make(map[string]uint64, len(c.blamesIssued))
	//lint:allow ordered-map-range map-to-map copy; the copy is order-insensitive
	for reason, ctr := range c.blamesIssued {
		out[reason] = ctr.Load()
	}
	return out
}

// Totals sums sent counters over every kind for which include returns true
// and reports (messages, bytes).
func (c *Collector) Totals(include func(msg.Kind) bool) (msgs, bytes uint64) {
	for k := msg.Kind(1); int(k) < kindSlots; k++ {
		if include(k) {
			msgs += c.SentMsgs(k)
			bytes += c.SentBytes(k)
		}
	}
	return msgs, bytes
}

// VerificationTotals reports messages and bytes sent by LiFTinG
// verifications (everything except propose/request/serve).
func (c *Collector) VerificationTotals() (msgs, bytes uint64) {
	return c.Totals(func(k msg.Kind) bool { return k.IsVerification() })
}

// ProtocolTotals reports messages and bytes sent by the dissemination
// protocol itself (propose/request/serve).
func (c *Collector) ProtocolTotals() (msgs, bytes uint64) {
	return c.Totals(func(k msg.Kind) bool { return !k.IsVerification() })
}

// Overhead returns LiFTinG's relative bandwidth overhead: verification bytes
// divided by dissemination bytes (Table 5's metric). It returns 0 when no
// dissemination traffic was recorded.
func (c *Collector) Overhead() float64 {
	_, vb := c.VerificationTotals()
	_, pb := c.ProtocolTotals()
	if pb == 0 {
		return 0
	}
	return float64(vb) / float64(pb)
}

// KindCount is one message kind's traffic totals inside a Snapshot.
type KindCount struct {
	Kind      string `json:"kind"`
	SentMsgs  uint64 `json:"sent_msgs"`
	SentBytes uint64 `json:"sent_bytes"`
	RecvMsgs  uint64 `json:"recv_msgs"`
	RecvBytes uint64 `json:"recv_bytes"`
	DropMsgs  uint64 `json:"dropped_msgs,omitempty"`
	DropBytes uint64 `json:"dropped_bytes,omitempty"`
}

// ReasonCount is one blame reason's count inside a Snapshot.
type ReasonCount struct {
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

// AuditCounts summarizes audit outcomes inside a Snapshot.
type AuditCounts struct {
	Responded    uint64 `json:"responded"`
	Unresponsive uint64 `json:"unresponsive"`
	Passed       uint64 `json:"passed"`
	Failed       uint64 `json:"failed"`
}

// Snapshot is a deterministic dump of the collector's cumulative state:
// integer counts and one derived ratio, no wall-clock anywhere. Taken at a
// sim-time period boundary (all engine shards parked at the barrier) it is
// byte-identical across shard and worker counts, because every field is a
// sum of commuting atomic adds over a shard-independent event set.
type Snapshot struct {
	Period            uint64      `json:"period"`
	Kinds             []KindCount `json:"kinds"`
	ProtocolBytes     uint64      `json:"protocol_bytes"`
	VerificationBytes uint64      `json:"verification_bytes"`
	OverheadPpm       uint64      `json:"overhead_ppm"`
	DupChunks         uint64      `json:"dup_chunks"`
	UsefulChunks      uint64      `json:"useful_chunks"`
	// Content-plane QoE: payload bytes delivered as first copies, serves
	// rejected by hash verification, and integer-nanosecond means of stream
	// lag and inter-arrival jitter.
	GoodputBytes       uint64            `json:"goodput_bytes"`
	InvalidServes      uint64            `json:"invalid_serves"`
	StreamLagMeanNs    uint64            `json:"stream_lag_mean_ns"`
	StreamJitterMeanNs uint64            `json:"stream_jitter_mean_ns"`
	BlamesIssued       []ReasonCount     `json:"blames_issued,omitempty"`
	BlamesReceived     uint64            `json:"blames_received"`
	Audits             AuditCounts       `json:"audits"`
	Expulsions         uint64            `json:"expulsions"`
	ServeLatency       HistogramSnapshot `json:"serve_latency"`
}

// SnapshotAt captures the collector's cumulative state, stamped with the
// given period number. Kinds with no traffic at all are omitted; the rest
// appear in wire-kind order.
func (c *Collector) SnapshotAt(period uint64) Snapshot {
	s := Snapshot{
		Period:             period,
		DupChunks:          c.dupChunks.Load(),
		UsefulChunks:       c.usefulChunks.Load(),
		GoodputBytes:       c.goodputBytes.Load(),
		InvalidServes:      c.invalidServes.Load(),
		StreamLagMeanNs:    c.StreamLagMeanNs(),
		StreamJitterMeanNs: c.StreamJitterMeanNs(),
		Expulsions:         c.expulsions.Load(),
		Audits: AuditCounts{
			Responded:    c.auditsResponded.Load(),
			Unresponsive: c.auditsUnresponsive.Load(),
			Passed:       c.auditsPassed.Load(),
			Failed:       c.auditsFailed.Load(),
		},
		ServeLatency:   c.ServeLatency.Snapshot(),
		BlamesReceived: c.RecvMsgs(msg.KindBlame),
	}
	for k := msg.Kind(1); int(k) < kindSlots; k++ {
		kc := KindCount{
			Kind:      k.String(),
			SentMsgs:  c.SentMsgs(k),
			SentBytes: c.SentBytes(k),
			RecvMsgs:  c.RecvMsgs(k),
			RecvBytes: c.RecvBytes(k),
			DropMsgs:  c.Dropped(k),
			DropBytes: c.DroppedBytes(k),
		}
		if kc.SentMsgs == 0 && kc.RecvMsgs == 0 && kc.DropMsgs == 0 {
			continue
		}
		if k.IsVerification() {
			s.VerificationBytes += kc.SentBytes
		} else {
			s.ProtocolBytes += kc.SentBytes
		}
		s.Kinds = append(s.Kinds, kc)
	}
	if s.ProtocolBytes > 0 {
		// Parts-per-million keeps the ratio integral: integer division is
		// exact and deterministic where float formatting invites drift.
		s.OverheadPpm = s.VerificationBytes * 1_000_000 / s.ProtocolBytes
	}
	c.blameMu.Lock()
	//lint:allow ordered-map-range collect-then-sort: the slice is sorted by reason below
	for reason, ctr := range c.blamesIssued {
		if v := ctr.Load(); v > 0 {
			s.BlamesIssued = append(s.BlamesIssued, ReasonCount{Reason: reason, Count: v})
		}
	}
	c.blameMu.Unlock()
	sort.Slice(s.BlamesIssued, func(i, j int) bool {
		return s.BlamesIssued[i].Reason < s.BlamesIssued[j].Reason
	})
	return s
}

// Register installs the collector's metric families into reg for Prometheus
// exposition. All values are read at scrape time; recording never touches
// the registry.
func (c *Collector) Register(reg *Registry) {
	perKind := func(pick func(k msg.Kind) uint64) func() []LabeledValue {
		return func() []LabeledValue {
			var out []LabeledValue
			for k := msg.Kind(1); int(k) < kindSlots; k++ {
				if v := pick(k); v > 0 {
					out = append(out, LabeledValue{
						Labels: [][2]string{{"kind", k.String()}},
						Value:  v,
					})
				}
			}
			return out
		}
	}
	reg.NewLabeledCounterFunc("lifting_sent_messages_total",
		"Messages sent, by wire kind.", perKind(c.SentMsgs))
	reg.NewLabeledCounterFunc("lifting_sent_bytes_total",
		"Bytes sent on the wire, by kind.", perKind(c.SentBytes))
	reg.NewLabeledCounterFunc("lifting_recv_messages_total",
		"Messages delivered, by wire kind.", perKind(c.RecvMsgs))
	reg.NewLabeledCounterFunc("lifting_recv_bytes_total",
		"Bytes delivered, by kind.", perKind(c.RecvBytes))
	reg.NewLabeledCounterFunc("lifting_dropped_messages_total",
		"Messages lost in transit, by kind.", perKind(c.Dropped))
	reg.NewLabeledCounterFunc("lifting_dropped_bytes_total",
		"Bytes lost in transit, by kind.", perKind(c.DroppedBytes))
	reg.NewCounterFunc("lifting_protocol_bytes_total",
		"Bytes sent by the dissemination protocol (propose/request/serve).",
		func() uint64 { _, b := c.ProtocolTotals(); return b })
	reg.NewCounterFunc("lifting_verification_bytes_total",
		"Bytes sent by LiFTinG verifications.",
		func() uint64 { _, b := c.VerificationTotals(); return b })
	reg.NewGaugeFunc("lifting_verification_overhead_ratio",
		"Verification bytes divided by dissemination bytes (Table 5; paper claims <8%).",
		c.Overhead)
	reg.NewCounterFunc("lifting_duplicate_chunks_total",
		"Serves received for chunks the node already held.", c.DupChunks)
	reg.NewCounterFunc("lifting_useful_chunks_total",
		"Serves that delivered a new chunk.", c.UsefulChunks)
	reg.NewCounterFunc("lifting_goodput_bytes_total",
		"Payload bytes delivered as first copies (QoE goodput).", c.GoodputBytes)
	reg.NewCounterFunc("lifting_invalid_serves_total",
		"Serves rejected by content hash verification.", c.InvalidServes)
	reg.NewGaugeFunc("lifting_stream_lag_seconds",
		"Mean stream lag: chunk arrival minus source generation time.",
		func() float64 { return float64(c.StreamLagMeanNs()) / 1e9 })
	reg.NewGaugeFunc("lifting_stream_jitter_seconds",
		"Mean inter-arrival jitter against the nominal chunk interval.",
		func() float64 { return float64(c.StreamJitterMeanNs()) / 1e9 })
	reg.NewLabeledCounterFunc("lifting_blames_issued_total",
		"Blames issued locally, by reason.", func() []LabeledValue {
			c.blameMu.Lock()
			out := make([]LabeledValue, 0, len(c.blamesIssued))
			//lint:allow ordered-map-range exposition sorts labeled series before rendering
			for reason, ctr := range c.blamesIssued {
				out = append(out, LabeledValue{
					Labels: [][2]string{{"reason", reason}},
					Value:  ctr.Load(),
				})
			}
			c.blameMu.Unlock()
			return sortLabeled(out)
		})
	reg.NewCounterFunc("lifting_blames_received_total",
		"Blame messages delivered to this collector's nodes.",
		func() uint64 { return c.RecvMsgs(msg.KindBlame) })
	reg.NewLabeledCounterFunc("lifting_audit_outcomes_total",
		"Completed audits, by response and verdict.", func() []LabeledValue {
			return []LabeledValue{
				{Labels: [][2]string{{"result", "failed"}}, Value: c.auditsFailed.Load()},
				{Labels: [][2]string{{"result", "passed"}}, Value: c.auditsPassed.Load()},
				{Labels: [][2]string{{"result", "responded"}}, Value: c.auditsResponded.Load()},
				{Labels: [][2]string{{"result", "unresponsive"}}, Value: c.auditsUnresponsive.Load()},
			}
		})
	reg.NewCounterFunc("lifting_expulsions_total",
		"Expulsion decisions recorded.", c.Expulsions)
	reg.NewHistogramMetric("lifting_serve_latency_seconds",
		"Propose-to-serve latency: request sent to chunk delivered.", c.ServeLatency)
}
