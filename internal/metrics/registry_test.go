package metrics

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lifting/internal/msg"
)

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.NewCounter("test_ops_total", "Operations.")
	ctr.Add(3)
	g := reg.NewGauge("test_level", "Level.")
	g.Set(0.5)
	reg.NewGaugeFunc("test_live", "Live value.", func() float64 { return 2 })
	h := NewHistogram([]time.Duration{10 * time.Millisecond, 100 * time.Millisecond})
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)
	reg.NewHistogramMetric("test_latency_seconds", "Latency.", h)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# HELP test_ops_total Operations.\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 3\n",
		"# TYPE test_level gauge\n",
		"test_level 0.5\n",
		"test_live 2\n",
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="0.01"} 1` + "\n",
		`test_latency_seconds_bucket{le="0.1"} 2` + "\n",
		`test_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"test_latency_seconds_sum 2.055\n",
		"test_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionWellFormed runs a loose validator over a full collector
// exposition: every non-comment line must be `name[{labels}] value`, every
// family must carry a TYPE header first.
func TestExpositionWellFormed(t *testing.T) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 1000}
	blame := &msg.Blame{Sender: 2, Target: 3, Value: 1}
	c.OnSend(1, serve, serve.WireSize())
	c.OnDeliver(2, serve, serve.WireSize())
	c.OnSend(2, blame, blame.WireSize())
	c.OnDrop(serve, serve.WireSize())
	c.OnUsefulChunk(2, 30*time.Millisecond, 1316)
	c.OnDuplicateChunk(2)
	c.OnBlameIssued(`weird "reason"` + "\nwith newline")
	c.OnAuditOutcome(true, false)
	c.OnExpel()

	reg := NewRegistry()
	c.Register(reg)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()

	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "\\n") {
			// escaped newline inside a label value — fine
		} else if strings.Count(line, " ") < 1 {
			t.Fatalf("sample line without value: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q has no TYPE header:\n%s", name, out)
		}
	}
	for _, want := range []string{
		"lifting_verification_overhead_ratio ",
		`lifting_sent_messages_total{kind="serve"} 1`,
		"lifting_duplicate_chunks_total 1",
		"lifting_useful_chunks_total 1",
		`lifting_dropped_bytes_total{kind="serve"}`,
		"lifting_expulsions_total 1",
		`lifting_audit_outcomes_total{result="failed"} 1`,
		"lifting_serve_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `reason="weird \"reason\"\nwith newline"`) {
		t.Fatalf("label escaping broken:\n%s", out)
	}
}

func TestHistogramSnapshotDeterministic(t *testing.T) {
	h := NewHistogram(HistogramBuckets)
	h.Observe(3 * time.Millisecond)
	h.Observe(700 * time.Millisecond)
	h.Observe(10 * time.Second)
	s := h.Snapshot()
	if s.Count != 3 || s.SumNs != int64(10*time.Second+703*time.Millisecond) {
		t.Fatalf("snapshot: %+v", s)
	}
	if len(s.Counts) != len(HistogramBuckets)+1 {
		t.Fatalf("bucket count: %+v", s)
	}
	if s.Counts[len(s.Counts)-1] != 3 {
		t.Fatalf("+Inf bucket not cumulative: %+v", s)
	}
	// Cumulative counts must be monotone.
	for i := 1; i < len(s.Counts); i++ {
		if s.Counts[i] < s.Counts[i-1] {
			t.Fatalf("non-monotone buckets: %+v", s.Counts)
		}
	}
}

// BenchmarkMetricsHotPath measures the record-side cost of the collector —
// the price every simulated or real message pays. Must stay 0 allocs/op.
func BenchmarkMetricsHotPath(b *testing.B) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 1000}
	size := serve.WireSize()
	c.OnSend(1, serve, size)
	c.OnDeliver(2, serve, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.OnSend(1, serve, size)
		c.OnDeliver(2, serve, size)
		c.OnUsefulChunk(2, 10*time.Millisecond, 1316)
	}
}

// BenchmarkMetricsHotPathParallel exercises the striped counters from
// concurrent goroutines, the live/udp contention shape.
func BenchmarkMetricsHotPathParallel(b *testing.B) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 1000}
	size := serve.WireSize()
	for id := msg.NodeID(0); id < 16; id++ {
		c.OnSend(id, serve, size)
	}
	b.ReportAllocs()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := msg.NodeID(next.Add(1) * 7)
		for pb.Next() {
			c.OnSend(id, serve, size)
			c.OnDeliver(id, serve, size)
		}
	})
}
