package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"lifting/internal/msg"
)

func TestCounters(t *testing.T) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 1000}
	ack := &msg.Ack{Sender: 2, Chunks: []msg.ChunkID{1}}
	c.OnSend(1, serve, serve.WireSize())
	c.OnSend(1, serve, serve.WireSize())
	c.OnSend(2, ack, ack.WireSize())
	c.OnDeliver(3, serve, serve.WireSize())
	c.OnDrop(serve, serve.WireSize())

	if got := c.SentMsgs(msg.KindServe); got != 2 {
		t.Fatalf("SentMsgs(serve) = %d, want 2", got)
	}
	if got := c.SentBytes(msg.KindServe); got != uint64(2*serve.WireSize()) {
		t.Fatalf("SentBytes(serve) = %d", got)
	}
	if got := c.RecvMsgs(msg.KindServe); got != 1 {
		t.Fatalf("RecvMsgs(serve) = %d, want 1", got)
	}
	if got := c.RecvBytes(msg.KindServe); got != uint64(serve.WireSize()) {
		t.Fatalf("RecvBytes(serve) = %d", got)
	}
	if got := c.Dropped(msg.KindServe); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	if got := c.DroppedBytes(msg.KindServe); got != uint64(serve.WireSize()) {
		t.Fatalf("DroppedBytes = %d", got)
	}
	n1 := c.Node(1)
	if n1.SentMsgs != 2 || n1.SentBytes != uint64(2*serve.WireSize()) {
		t.Fatalf("node 1 counters: %+v", n1)
	}
	n3 := c.Node(3)
	if n3.RecvMsgs != 1 {
		t.Fatalf("node 3 counters: %+v", n3)
	}
	if got := c.Node(99); got != (PerNode{}) {
		t.Fatalf("unknown node counters: %+v", got)
	}
}

// TestSendRecvDropSymmetry pins the accounting identity the transports
// maintain: every sent message is either delivered or dropped, in both
// message and byte units.
func TestSendRecvDropSymmetry(t *testing.T) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 500}
	for i := 0; i < 10; i++ {
		c.OnSend(1, serve, serve.WireSize())
		if i%3 == 0 {
			c.OnDrop(serve, serve.WireSize())
		} else {
			c.OnDeliver(2, serve, serve.WireSize())
		}
	}
	k := msg.KindServe
	if c.SentMsgs(k) != c.RecvMsgs(k)+c.Dropped(k) {
		t.Fatalf("msgs: sent %d != recv %d + dropped %d",
			c.SentMsgs(k), c.RecvMsgs(k), c.Dropped(k))
	}
	if c.SentBytes(k) != c.RecvBytes(k)+c.DroppedBytes(k) {
		t.Fatalf("bytes: sent %d != recv %d + dropped %d",
			c.SentBytes(k), c.RecvBytes(k), c.DroppedBytes(k))
	}
}

func TestOverheadRatio(t *testing.T) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 10000}
	blame := &msg.Blame{Sender: 2, Target: 3, Value: 1}
	c.OnSend(1, serve, serve.WireSize())
	c.OnSend(2, blame, blame.WireSize())

	vm, vb := c.VerificationTotals()
	pm, pb := c.ProtocolTotals()
	if vm != 1 || pm != 1 {
		t.Fatalf("message totals = %d/%d", vm, pm)
	}
	want := float64(vb) / float64(pb)
	if got := c.Overhead(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Overhead = %v, want %v", got, want)
	}
	if want > 0.02 {
		t.Fatalf("verification bytes should be tiny next to a 10 kB serve: %v", want)
	}
}

func TestOverheadZeroWithoutProtocolTraffic(t *testing.T) {
	c := NewCollector()
	blame := &msg.Blame{Sender: 2, Target: 3, Value: 1}
	c.OnSend(2, blame, blame.WireSize())
	if got := c.Overhead(); got != 0 {
		t.Fatalf("Overhead without protocol bytes = %v, want 0", got)
	}
}

func TestChunkAccounting(t *testing.T) {
	c := NewCollector()
	c.OnUsefulChunk(4, 20*time.Millisecond, 1316)
	c.OnUsefulChunk(4, 40*time.Millisecond, 1316)
	c.OnDuplicateChunk(4)
	c.OnDuplicateChunk(5)
	if c.UsefulChunks() != 2 || c.DupChunks() != 2 {
		t.Fatalf("chunk totals = %d useful / %d dup", c.UsefulChunks(), c.DupChunks())
	}
	n4 := c.Node(4)
	if n4.UsefulChunks != 2 || n4.DupChunks != 1 {
		t.Fatalf("node 4 chunk counters: %+v", n4)
	}
	if got := c.ServeLatency.Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if got := c.ServeLatency.SumNanos(); got != int64(60*time.Millisecond) {
		t.Fatalf("latency sum = %d", got)
	}
}

func TestVerificationCounters(t *testing.T) {
	c := NewCollector()
	c.OnBlameIssued("fanout")
	c.OnBlameIssued("fanout")
	c.OnBlameIssued("direct")
	c.OnAuditOutcome(true, true)
	c.OnAuditOutcome(false, false)
	c.OnExpel()

	blames := c.BlamesIssued()
	if blames["fanout"] != 2 || blames["direct"] != 1 {
		t.Fatalf("blame counts: %+v", blames)
	}
	if c.Expulsions() != 1 {
		t.Fatalf("expulsions = %d", c.Expulsions())
	}
	s := c.SnapshotAt(7)
	if s.Period != 7 {
		t.Fatalf("snapshot period = %d", s.Period)
	}
	if s.Audits.Responded != 1 || s.Audits.Unresponsive != 1 ||
		s.Audits.Passed != 1 || s.Audits.Failed != 1 {
		t.Fatalf("audit counts: %+v", s.Audits)
	}
	if len(s.BlamesIssued) != 2 || s.BlamesIssued[0].Reason != "direct" {
		t.Fatalf("snapshot blames (want sorted by reason): %+v", s.BlamesIssued)
	}
}

func TestSnapshotKindsOrderedAndFiltered(t *testing.T) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 100}
	blame := &msg.Blame{Sender: 2, Target: 3, Value: 1}
	c.OnSend(2, blame, blame.WireSize())
	c.OnSend(1, serve, serve.WireSize())
	c.OnDeliver(3, serve, serve.WireSize())

	s := c.SnapshotAt(1)
	if len(s.Kinds) != 2 {
		t.Fatalf("kinds = %+v, want serve and blame only", s.Kinds)
	}
	if s.Kinds[0].Kind != "serve" || s.Kinds[1].Kind != "blame" {
		t.Fatalf("kind order: %+v", s.Kinds)
	}
	if s.ProtocolBytes != uint64(serve.WireSize()) ||
		s.VerificationBytes != uint64(blame.WireSize()) {
		t.Fatalf("byte split: %d/%d", s.ProtocolBytes, s.VerificationBytes)
	}
	wantPpm := s.VerificationBytes * 1_000_000 / s.ProtocolBytes
	if s.OverheadPpm != wantPpm {
		t.Fatalf("overhead ppm = %d, want %d", s.OverheadPpm, wantPpm)
	}
	if s.BlamesReceived != 0 {
		t.Fatalf("blames received = %d (blame was sent, not delivered)", s.BlamesReceived)
	}
}

func TestSparseNodeIDs(t *testing.T) {
	c := NewCollector()
	m := &msg.ScoreReq{Sender: 1, Target: 2}
	// msg.NoNode and friends must not blow up the dense table.
	c.OnDeliver(msg.NoNode, m, m.WireSize())
	c.OnDeliver(maxDense+17, m, m.WireSize())
	if got := c.Node(msg.NoNode); got.RecvMsgs != 1 {
		t.Fatalf("NoNode counters: %+v", got)
	}
	if got := c.Node(maxDense + 17); got.RecvMsgs != 1 {
		t.Fatalf("sparse counters: %+v", got)
	}
	if got := c.Node(maxDense + 18); got != (PerNode{}) {
		t.Fatalf("unseen sparse id: %+v", got)
	}
	tab := *c.nodes.Load()
	if len(tab) >= maxDense {
		t.Fatalf("dense table grew to %d entries", len(tab))
	}
}

func TestConcurrentAccess(t *testing.T) {
	// The live runtime records from many goroutines; readers (a /metrics
	// scrape, a snapshot) run concurrently with writers.
	c := NewCollector()
	m := &msg.ScoreReq{Sender: 1, Target: 2}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := msg.NodeID(g)
			for i := 0; i < 1000; i++ {
				c.OnSend(id, m, m.WireSize())
				c.OnDeliver(id, m, m.WireSize())
				c.OnDrop(m, m.WireSize())
				c.OnUsefulChunk(id, time.Millisecond, 1316)
				c.OnDuplicateChunk(id)
				c.OnBlameIssued("fanout")
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		reg := NewRegistry()
		c.Register(reg)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			reg.WritePrometheus(&sb)
			c.SnapshotAt(uint64(i))
		}
	}()
	wg.Wait()
	<-done
	if got := c.SentMsgs(msg.KindScoreReq); got != 8000 {
		t.Fatalf("concurrent sends = %d, want 8000", got)
	}
	if got := c.Dropped(msg.KindScoreReq); got != 8000 {
		t.Fatalf("concurrent drops = %d, want 8000", got)
	}
	if c.UsefulChunks() != 8000 || c.DupChunks() != 8000 {
		t.Fatalf("chunk totals = %d/%d", c.UsefulChunks(), c.DupChunks())
	}
	if got := c.BlamesIssued()["fanout"]; got != 8000 {
		t.Fatalf("blames = %d", got)
	}
}

func TestTotalsFilter(t *testing.T) {
	c := NewCollector()
	c.OnSend(1, &msg.Propose{Sender: 1}, 100)
	c.OnSend(1, &msg.Request{Sender: 1}, 50)
	c.OnSend(1, &msg.Confirm{Sender: 1}, 40)
	msgs, bytes := c.Totals(func(k msg.Kind) bool { return k == msg.KindPropose })
	if msgs != 1 || bytes != 100 {
		t.Fatalf("filtered totals = %d/%d", msgs, bytes)
	}
}

// TestMetricsHotPathAllocs pins the record path at zero allocations once a
// node's counters exist — the property that lets the collector sit inside
// the sharded engine's event loop.
func TestMetricsHotPathAllocs(t *testing.T) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 1000}
	size := serve.WireSize()
	c.OnSend(1, serve, size) // install node 1
	c.OnDeliver(2, serve, size)
	allocs := testing.AllocsPerRun(1000, func() {
		c.OnSend(1, serve, size)
		c.OnDeliver(2, serve, size)
		c.OnDrop(serve, size)
		c.OnUsefulChunk(2, 10*time.Millisecond, 1316)
		c.OnDuplicateChunk(2)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates: %v allocs/run", allocs)
	}
}
