package metrics

import (
	"math"
	"sync"
	"testing"

	"lifting/internal/msg"
)

func TestCounters(t *testing.T) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 1000}
	ack := &msg.Ack{Sender: 2, Chunks: []msg.ChunkID{1}}
	c.OnSend(1, serve, serve.WireSize())
	c.OnSend(1, serve, serve.WireSize())
	c.OnSend(2, ack, ack.WireSize())
	c.OnDeliver(3, serve, serve.WireSize())
	c.OnDrop(serve)

	if got := c.SentMsgs(msg.KindServe); got != 2 {
		t.Fatalf("SentMsgs(serve) = %d, want 2", got)
	}
	if got := c.SentBytes(msg.KindServe); got != uint64(2*serve.WireSize()) {
		t.Fatalf("SentBytes(serve) = %d", got)
	}
	if got := c.Dropped(msg.KindServe); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	n1 := c.Node(1)
	if n1.SentMsgs != 2 || n1.SentBytes != uint64(2*serve.WireSize()) {
		t.Fatalf("node 1 counters: %+v", n1)
	}
	n3 := c.Node(3)
	if n3.RecvMsgs != 1 {
		t.Fatalf("node 3 counters: %+v", n3)
	}
	if got := c.Node(99); got != (PerNode{}) {
		t.Fatalf("unknown node counters: %+v", got)
	}
}

func TestOverheadRatio(t *testing.T) {
	c := NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 10000}
	blame := &msg.Blame{Sender: 2, Target: 3, Value: 1}
	c.OnSend(1, serve, serve.WireSize())
	c.OnSend(2, blame, blame.WireSize())

	vm, vb := c.VerificationTotals()
	pm, pb := c.ProtocolTotals()
	if vm != 1 || pm != 1 {
		t.Fatalf("message totals = %d/%d", vm, pm)
	}
	want := float64(vb) / float64(pb)
	if got := c.Overhead(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Overhead = %v, want %v", got, want)
	}
	if want > 0.02 {
		t.Fatalf("verification bytes should be tiny next to a 10 kB serve: %v", want)
	}
}

func TestOverheadZeroWithoutProtocolTraffic(t *testing.T) {
	c := NewCollector()
	blame := &msg.Blame{Sender: 2, Target: 3, Value: 1}
	c.OnSend(2, blame, blame.WireSize())
	if got := c.Overhead(); got != 0 {
		t.Fatalf("Overhead without protocol bytes = %v, want 0", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	// The live runtime records from many goroutines.
	c := NewCollector()
	m := &msg.ScoreReq{Sender: 1, Target: 2}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.OnSend(1, m, m.WireSize())
				c.OnDeliver(2, m, m.WireSize())
				c.OnDrop(m)
			}
		}()
	}
	wg.Wait()
	if got := c.SentMsgs(msg.KindScoreReq); got != 8000 {
		t.Fatalf("concurrent sends = %d, want 8000", got)
	}
	if got := c.Dropped(msg.KindScoreReq); got != 8000 {
		t.Fatalf("concurrent drops = %d, want 8000", got)
	}
}

func TestTotalsFilter(t *testing.T) {
	c := NewCollector()
	c.OnSend(1, &msg.Propose{Sender: 1}, 100)
	c.OnSend(1, &msg.Request{Sender: 1}, 50)
	c.OnSend(1, &msg.Confirm{Sender: 1}, 40)
	msgs, bytes := c.Totals(func(k msg.Kind) bool { return k == msg.KindPropose })
	if msgs != 1 || bytes != 100 {
		t.Fatalf("filtered totals = %d/%d", msgs, bytes)
	}
}
