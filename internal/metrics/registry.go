package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Registry is a minimal Prometheus-style metric registry. It is purely a
// presentation layer: primitives registered here are rendered on demand by
// WritePrometheus, and recording values never goes through the registry, so
// scraping cost is paid only by the scraper. Registration order is preserved
// in the exposition output.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
}

// entry is one metric family: a TYPE/HELP header plus a render function that
// emits the family's sample lines at scrape time.
type entry struct {
	name   string
	help   string
	typ    string
	render func(w io.Writer, name string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

func (r *Registry) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, e)
}

// Counter is a monotonically increasing value. Add is lock-free.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// NewCounter registers and returns a counter metric.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(&entry{name: name, help: help, typ: "counter", render: func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	}})
	return c
}

// Gauge is a value that can go up and down. Set is lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// NewGauge registers and returns a gauge metric.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&entry{name: name, help: help, typ: "gauge", render: func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(g.Value()))
	}})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.add(&entry{name: name, help: help, typ: "gauge", render: func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(fn()))
	}})
}

// NewCounterFunc registers a counter whose value is read at scrape time —
// used to expose counters whose hot path lives elsewhere (the Collector's
// striped atomics) without routing records through the registry.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	r.add(&entry{name: name, help: help, typ: "counter", render: func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	}})
}

// LabeledValue is one sample of a labeled family, produced at scrape time.
type LabeledValue struct {
	Labels [][2]string // label name/value pairs, in output order
	Value  uint64
}

// NewLabeledCounterFunc registers a counter family whose samples (label sets
// and values) are produced at scrape time.
func (r *Registry) NewLabeledCounterFunc(name, help string, fn func() []LabeledValue) {
	r.add(&entry{name: name, help: help, typ: "counter", render: func(w io.Writer, n string) {
		for _, lv := range fn() {
			fmt.Fprintf(w, "%s%s %d\n", n, renderLabels(lv.Labels), lv.Value)
		}
	}})
}

// HistogramBuckets is the default propose→serve latency bucket layout: upper
// bounds chosen to resolve both simulated latencies (milliseconds) and real
// WAN deployments (seconds).
var HistogramBuckets = []time.Duration{
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2 * time.Second,
	5 * time.Second,
}

// Histogram is a fixed-bucket duration histogram. Observe is lock-free. The
// running sum is kept in integer nanoseconds, not floating point: float
// addition is order-dependent, and the sum must come out byte-identical no
// matter which shard goroutine observed which sample first.
type Histogram struct {
	bounds  []time.Duration
	buckets []atomic.Uint64 // non-cumulative; bucket i counts obs <= bounds[i]
	inf     atomic.Uint64   // observations above the last bound
	count   atomic.Uint64
	sumNs   atomic.Int64
}

// NewHistogram returns a histogram with the given ascending upper bounds.
func NewHistogram(bounds []time.Duration) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for i, b := range h.bounds {
		if d <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumNanos returns the integer-nanosecond sum of all observations.
func (h *Histogram) SumNanos() int64 { return h.sumNs.Load() }

// HistogramSnapshot is a deterministic dump of a histogram: cumulative
// bucket counts keyed by upper bound in milliseconds, plus count and the
// integer nanosecond sum. No floats — safe for byte-identical JSON.
type HistogramSnapshot struct {
	BoundsMs []int64  `json:"bounds_ms"`
	Counts   []uint64 `json:"counts"` // cumulative, one per bound, then +Inf last
	Count    uint64   `json:"count"`
	SumNs    int64    `json:"sum_ns"`
}

// Snapshot returns a deterministic copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		BoundsMs: make([]int64, len(h.bounds)),
		Counts:   make([]uint64, len(h.bounds)+1),
		Count:    h.count.Load(),
		SumNs:    h.sumNs.Load(),
	}
	var cum uint64
	for i := range h.bounds {
		s.BoundsMs[i] = h.bounds[i].Milliseconds()
		cum += h.buckets[i].Load()
		s.Counts[i] = cum
	}
	s.Counts[len(h.bounds)] = cum + h.inf.Load()
	return s
}

// NewHistogramMetric registers an existing histogram under name, rendering
// Prometheus _bucket/_sum/_count lines with le labels in seconds.
func (r *Registry) NewHistogramMetric(name, help string, h *Histogram) {
	r.add(&entry{name: name, help: help, typ: "histogram", render: func(w io.Writer, n string) {
		var cum uint64
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b.Seconds()), cum)
		}
		cum += h.inf.Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(float64(h.sumNs.Load())/1e9))
		fmt.Fprintf(w, "%s_count %d\n", n, h.count.Load())
	}})
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): HELP and TYPE headers followed by the
// family's samples, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.typ)
		e.render(w, e.name)
	}
}

func renderLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[0])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients expect: %g is the
// shortest representation without trailing zeros.
func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// sortLabeled sorts labeled samples by their first label value — used by
// scrape-time producers so label order is deterministic.
func sortLabeled(lvs []LabeledValue) []LabeledValue {
	sort.Slice(lvs, func(i, j int) bool { return lvs[i].Labels[0][1] < lvs[j].Labels[0][1] })
	return lvs
}
