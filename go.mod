module lifting

go 1.22
